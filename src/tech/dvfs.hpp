#pragma once
// Dynamic voltage/frequency scaling and near-threshold operation.
//
// The circuit model is the standard alpha-power law:
//     f(V)  =  k * (V - Vth)^alpha / V            (alpha ~ 1.3 for short channel)
//     E_dyn =  Ceff * V^2                          per operation
//     P_leak(V) = P_leak_nom * (V / Vnom) * exp((V - Vnom) / v_slope)
//     E_leak per op = P_leak(V) / f(V)
//
// Total energy per operation E(V) = E_dyn + E_leak has the well-known
// "energy valley": lowering V cuts CV^2 quadratically until the slowdown
// makes leakage-per-op dominate; the minimum-energy point sits near or
// just below threshold -- the paper's "near-threshold voltage operation
// has tremendous potential to reduce power but at the cost of
// reliability".

#include <vector>

#include "tech/node.hpp"

namespace arch21::tech {

/// Voltage/frequency operating-point model for one core in one node.
class DvfsModel {
 public:
  struct Params {
    double vnom = 1.0;        ///< nominal supply, V
    double vth = 0.30;        ///< threshold voltage, V
    double fnom_ghz = 3.0;    ///< frequency at vnom, GHz
    double alpha = 1.3;       ///< alpha-power exponent
    double ceff_nj = 0.5;     ///< switched energy at 1 V, nJ per op (Ceff in nF)
    double pleak_nom_w = 0.6; ///< leakage power at vnom, W
    double v_slope = 0.12;    ///< exponential leakage slope vs V, volts/e-fold
    /// Lowest legal supply; 0 => vth + 50 mV.  When set it must lie
    /// strictly inside (vth, vnom) -- and when defaulted, vth + 50 mV
    /// must still clear vnom -- or the constructor throws: an inverted
    /// [vfloor, vnom] bracket would silently corrupt every search below.
    double vmin = 0.0;
  };

  explicit DvfsModel(Params p);

  /// Build from a node-table entry (scales frequency and leakage from the
  /// table row; `cores_sharing_leakage` divides chip leakage per core).
  static DvfsModel for_node(const TechNode& n, double ceff_nj = 0.5,
                            double pleak_nom_w = 0.6);

  const Params& params() const noexcept { return p_; }

  /// Clock frequency in Hz at supply `v`; 0 at or below vmin floor.
  double frequency(double v) const noexcept;

  /// Dynamic energy per operation at supply `v` (joules).
  double dynamic_energy(double v) const noexcept;

  /// Leakage power at supply `v` (watts).
  double leakage_power(double v) const noexcept;

  /// Leakage energy charged to each operation at supply `v` (joules).
  double leakage_energy(double v) const noexcept;

  /// Total energy per operation (joules).
  double energy_per_op(double v) const noexcept;

  /// Power when running flat out at supply `v` (watts):
  /// dynamic + leakage at f(v).
  double power(double v) const noexcept;

  /// Supply minimizing energy/op, found by golden-section search over
  /// [vmin, vnom].
  double min_energy_voltage() const noexcept;

  /// Result of a power-capped supply search: the supply, plus whether
  /// the budget is actually attainable there.  `feasible == false` means
  /// the cap is below the floor's own draw -- v is the vmin floor and
  /// running there still exceeds the budget.
  struct PowerFit {
    double v = 0;
    bool feasible = false;
  };

  /// Highest supply in [vmin floor, vnom] whose full-speed power fits
  /// `budget_w`.  Distinguishes "the floor happens to fit exactly"
  /// (feasible) from "even the floor exceeds the cap" (infeasible).
  PowerFit fit_voltage_for_power(double budget_w) const noexcept;

  /// Convenience form of fit_voltage_for_power() that clamps to the vmin
  /// floor when the cap is infeasible; prefer the PowerFit form when the
  /// caller must react to an unmeetable budget.
  double voltage_for_power(double budget_w) const noexcept;

  /// An operating point for tabulation.
  struct Point {
    double v = 0;
    double f_hz = 0;
    double e_op_j = 0;
    double power_w = 0;
  };

  /// Sweep `steps` evenly spaced supplies in [vmin floor, vnom].
  std::vector<Point> sweep(int steps = 25) const;

 private:
  double vfloor() const noexcept;
  Params p_;
  double kf_ = 0;  ///< alpha-power constant fixing f(vnom) = fnom
};

}  // namespace arch21::tech
