#include "tech/dvfs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace arch21::tech {

DvfsModel::DvfsModel(Params p) : p_(p) {
  if (p_.vnom <= p_.vth) {
    throw std::invalid_argument("DvfsModel: vnom must exceed vth");
  }
  if (p_.alpha <= 0 || p_.fnom_ghz <= 0 || p_.ceff_nj <= 0) {
    throw std::invalid_argument("DvfsModel: non-positive parameter");
  }
  // The search brackets in min_energy_voltage() / voltage_for_power()
  // are [vfloor, vnom]; an inverted bracket (vfloor >= vnom) would make
  // both searches silently converge to garbage, so it is rejected here:
  // an explicit vmin must sit strictly inside (vth, vnom), and when vmin
  // is defaulted the implicit vth + 50 mV floor must still clear vnom.
  if (p_.vmin > 0 && (p_.vmin <= p_.vth || p_.vmin >= p_.vnom)) {
    throw std::invalid_argument(
        "DvfsModel: vmin must lie strictly inside (vth, vnom)");
  }
  if (p_.vmin == 0 && p_.vth + 0.05 >= p_.vnom) {
    throw std::invalid_argument(
        "DvfsModel: default floor vth + 0.05 must stay below vnom "
        "(set vmin explicitly for headroom this tight)");
  }
  if (p_.vmin < 0 || !std::isfinite(p_.vmin)) {
    throw std::invalid_argument("DvfsModel: vmin must be finite and >= 0");
  }
  // Fix the alpha-power constant so that f(vnom) == fnom.
  kf_ = p_.fnom_ghz * units::giga * p_.vnom /
        std::pow(p_.vnom - p_.vth, p_.alpha);
}

DvfsModel DvfsModel::for_node(const TechNode& n, double ceff_nj,
                              double pleak_nom_w) {
  Params p;
  p.vnom = n.vdd;
  p.vth = n.vth;
  p.fnom_ghz = n.freq_ghz;
  // Scale switched capacitance with the node's per-gate capacitance so
  // newer nodes burn less dynamic energy per op.
  p.ceff_nj = ceff_nj * n.cgate_rel;
  p.pleak_nom_w = pleak_nom_w * n.leak_rel / 20.0;  // normalized near 22 nm
  return DvfsModel(p);
}

double DvfsModel::vfloor() const noexcept {
  return p_.vmin > 0 ? p_.vmin : p_.vth + 0.05;
}

double DvfsModel::frequency(double v) const noexcept {
  if (v <= p_.vth) return 0.0;
  return kf_ * std::pow(v - p_.vth, p_.alpha) / v;
}

double DvfsModel::dynamic_energy(double v) const noexcept {
  // Ceff is quoted as nJ at 1 V: E = Ceff * V^2.
  return p_.ceff_nj * units::nano * v * v;
}

double DvfsModel::leakage_power(double v) const noexcept {
  return p_.pleak_nom_w * (v / p_.vnom) *
         std::exp((v - p_.vnom) / p_.v_slope);
}

double DvfsModel::leakage_energy(double v) const noexcept {
  const double f = frequency(v);
  if (f <= 0) return std::numeric_limits<double>::infinity();
  return leakage_power(v) / f;
}

double DvfsModel::energy_per_op(double v) const noexcept {
  return dynamic_energy(v) + leakage_energy(v);
}

double DvfsModel::power(double v) const noexcept {
  return dynamic_energy(v) * frequency(v) + leakage_power(v);
}

double DvfsModel::min_energy_voltage() const noexcept {
  // Golden-section search; energy_per_op is unimodal over (vth, vnom].
  double lo = vfloor();
  double hi = p_.vnom;
  constexpr double phi = 0.6180339887498949;
  double a = hi - phi * (hi - lo);
  double b = lo + phi * (hi - lo);
  double fa = energy_per_op(a);
  double fb = energy_per_op(b);
  for (int i = 0; i < 80; ++i) {
    if (fa < fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - phi * (hi - lo);
      fa = energy_per_op(a);
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + phi * (hi - lo);
      fb = energy_per_op(b);
    }
  }
  return 0.5 * (lo + hi);
}

DvfsModel::PowerFit DvfsModel::fit_voltage_for_power(
    double budget_w) const noexcept {
  // power(v) is monotone increasing over [vfloor, vnom]; bisect.
  double lo = vfloor();
  double hi = p_.vnom;
  if (power(hi) <= budget_w) return {hi, true};
  if (power(lo) >= budget_w) {
    // The floor alone already draws budget_w or more: the cap is
    // infeasible at any legal supply (power(lo) > budget), or the floor
    // exactly fits (power(lo) == budget).  Both return the floor, but
    // only the latter is feasible -- callers that silently ran at `lo`
    // used to blow their budget here.
    return {lo, power(lo) <= budget_w};
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (power(mid) <= budget_w) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return {lo, true};
}

double DvfsModel::voltage_for_power(double budget_w) const noexcept {
  return fit_voltage_for_power(budget_w).v;
}

std::vector<DvfsModel::Point> DvfsModel::sweep(int steps) const {
  std::vector<Point> out;
  const double lo = vfloor();
  const double hi = p_.vnom;
  steps = std::max(steps, 2);
  out.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double v =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(steps - 1);
    out.push_back({v, frequency(v), energy_per_op(v), power(v)});
  }
  return out;
}

}  // namespace arch21::tech
