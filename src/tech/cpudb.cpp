#include "tech/cpudb.hpp"

#include <array>

namespace arch21::tech {

namespace {

// year, label, nm, MHz, IPC proxy, FO4 ps.  Shapes follow the public
// record: frequency rides deep pipelining through ~2004 then saturates
// (the power wall), while IPC climbs through superscalar/OoO and then
// creeps.  FO4 tracks raw device speed.
const std::array<CpuGeneration, 12>& rows() {
  static const std::array<CpuGeneration, 12> t = {{
      {1985, "gen1985-scalar", 1500, 12.5, 0.20, 1200},
      {1989, "gen1989-pipelined", 800, 33, 0.30, 700},
      {1993, "gen1993-superscalar", 500, 66, 0.90, 420},
      {1995, "gen1995-ooo", 350, 200, 1.00, 300},
      {1997, "gen1997-ooo2", 250, 300, 1.10, 220},
      {1999, "gen1999-deep", 180, 600, 1.20, 160},
      {2001, "gen2001-hyper", 130, 1700, 1.10, 115},
      {2004, "gen2004-peakfreq", 90, 3400, 1.20, 80},
      {2006, "gen2006-wide", 65, 3000, 1.60, 60},
      {2008, "gen2008-nehalem-class", 45, 3400, 1.80, 45},
      {2010, "gen2010-westmere-class", 32, 3600, 1.90, 37},
      {2012, "gen2012-ivb-class", 22, 3800, 2.00, 31},
  }};
  return t;
}

}  // namespace

std::span<const CpuGeneration> cpu_db() {
  return {rows().data(), rows().size()};
}

std::vector<PerfDecomposition> decompose_performance() {
  std::vector<PerfDecomposition> out;
  const auto& base = rows().front();
  for (const auto& g : rows()) {
    PerfDecomposition d;
    d.year = g.year;
    d.total_gain = g.performance() / base.performance();
    d.tech_gain = base.fo4_ps / g.fo4_ps;
    d.arch_gain = d.total_gain / d.tech_gain;
    out.push_back(d);
  }
  return out;
}

PerfDecomposition decomposition_2012() { return decompose_performance().back(); }

}  // namespace arch21::tech
