#pragma once
// Branch predictors, driven by real SR1 branch streams.  Part of the
// "architecture factor" story (E2/E24): the ~80x single-thread gain the
// paper credits to architecture is pipelining + caches + *prediction*;
// this module lets the microarchitecture bench measure the prediction
// slice directly.
//
// Predictors:
//   * StaticTaken     -- always predict taken (backward-branch heuristic
//                        degenerates to this on loop-dominated code)
//   * Bimodal         -- per-PC 2-bit saturating counters
//   * Gshare          -- global history XOR PC indexing, 2-bit counters

#include <cstdint>
#include <vector>

namespace arch21::cpu {

/// Common accounting for all predictors.
struct PredictorStats {
  std::uint64_t predictions = 0;
  std::uint64_t mispredictions = 0;

  double accuracy() const noexcept {
    return predictions ? 1.0 - static_cast<double>(mispredictions) /
                                   static_cast<double>(predictions)
                       : 0;
  }
  /// Mispredictions per 1000 predictions.
  double mpk() const noexcept {
    return predictions ? 1000.0 * static_cast<double>(mispredictions) /
                             static_cast<double>(predictions)
                       : 0;
  }
};

/// Predictor interface: predict, then train with the outcome.
class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;

  /// Predict and immediately train on the actual outcome; returns whether
  /// the prediction was correct.
  bool observe(std::uint64_t pc, bool taken);

  const PredictorStats& stats() const noexcept { return stats_; }
  virtual const char* name() const = 0;

 protected:
  virtual bool predict(std::uint64_t pc) = 0;
  virtual void train(std::uint64_t pc, bool taken) = 0;

 private:
  PredictorStats stats_;
};

/// Always-taken static prediction.
class StaticTaken final : public BranchPredictor {
 public:
  const char* name() const override { return "static-taken"; }

 protected:
  bool predict(std::uint64_t) override { return true; }
  void train(std::uint64_t, bool) override {}
};

/// Per-PC table of 2-bit saturating counters.
class Bimodal final : public BranchPredictor {
 public:
  explicit Bimodal(std::size_t entries = 1024);
  const char* name() const override { return "bimodal-2bit"; }

 protected:
  bool predict(std::uint64_t pc) override;
  void train(std::uint64_t pc, bool taken) override;

 private:
  std::vector<std::uint8_t> table_;  ///< counters 0..3; >=2 predicts taken
};

/// Gshare: global-history register XOR PC.
class Gshare final : public BranchPredictor {
 public:
  explicit Gshare(std::size_t entries = 4096, unsigned history_bits = 12);
  const char* name() const override { return "gshare"; }

 protected:
  bool predict(std::uint64_t pc) override;
  void train(std::uint64_t pc, bool taken) override;

 private:
  std::size_t index(std::uint64_t pc) const;
  std::vector<std::uint8_t> table_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_;
};

}  // namespace arch21::cpu
