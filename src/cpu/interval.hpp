#pragma once
// Interval-analysis core performance model (first-order Eyerman-style):
// a balanced out-of-order core sustains its issue width except during
// miss events, each of which inserts a penalty interval:
//
//   CPI = 1/width
//       + mpki_branch/1000 x branch_penalty
//       + mpki_l2/1000     x l2_penalty        (L1 misses hitting L2)
//       + mpki_llc/1000    x llc_penalty
//       + mpki_dram/1000   x (dram_penalty / mlp)
//
// DRAM penalties overlap under memory-level parallelism (mlp >= 1).
// Fed from real SR1 runs: branch MPKI from cpu/branch.hpp, memory MPKIs
// from the cache hierarchy driven by the machine's trace sink.  This is
// the quantitative skeleton behind E2's "architecture factor": each
// mechanism (prediction, each cache level, issue width) shrinks one penalty
// term.

#include <cstdint>

namespace arch21::cpu {

/// Core configuration for the interval model.
struct CoreParams {
  double issue_width = 4;
  double branch_penalty = 14;  ///< pipeline refill, cycles
  double l2_latency = 12;      ///< L1-miss/L2-hit exposure
  double llc_latency = 38;
  double dram_latency = 200;
  double mlp = 2.0;            ///< memory-level parallelism on DRAM misses
};

/// Event rates per kilo-instruction, measured from a real run.
struct WorkloadRates {
  double branch_mpki = 0;  ///< branch MISSES (mispredictions) per k-instr
  double l2_apki = 0;      ///< L1 misses serviced by L2, per k-instr
  double llc_apki = 0;     ///< serviced by LLC
  double dram_apki = 0;    ///< serviced by DRAM
};

/// CPI decomposition.
struct CpiBreakdown {
  double base = 0;
  double branch = 0;
  double l2 = 0;
  double llc = 0;
  double dram = 0;

  double total() const noexcept { return base + branch + l2 + llc + dram; }
  double ipc() const noexcept { return 1.0 / total(); }
};

/// Evaluate the interval model.
CpiBreakdown interval_cpi(const CoreParams& core, const WorkloadRates& w);

}  // namespace arch21::cpu
