#include "cpu/pipeline.hpp"

#include <sstream>
#include <stdexcept>

#include "isa/assembler.hpp"

namespace arch21::cpu {

ProfiledRun run_profiled(const std::string& source,
                         const std::vector<std::uint64_t>& inputs,
                         BranchPredictor& predictor, const CoreParams& core,
                         const MemoryGeometry& geometry,
                         std::uint64_t max_instructions) {
  auto asmres = isa::assemble(source);
  if (!asmres.ok()) {
    throw std::invalid_argument("run_profiled: assembly failed: " +
                                asmres.errors.front());
  }
  isa::Machine m(asmres.program);
  for (auto v : inputs) m.push_input(v);

  const energy::Catalogue cat;
  mem::Hierarchy hierarchy(geometry.l1, geometry.l2, geometry.llc, cat);
  m.set_trace_sink([&](isa::TraceRecord t) {
    hierarchy.access(t.addr, t.write);
  });
  m.set_branch_sink([&](isa::BranchRecord b) {
    predictor.observe(b.pc, b.taken);
  });

  ProfiledRun out;
  out.stop = m.run(max_instructions);
  out.machine = m.stats();
  out.branch = predictor.stats();
  out.memory = hierarchy.stats();

  const double ki =
      static_cast<double>(out.machine.instructions) / 1000.0;
  if (ki > 0) {
    out.rates.branch_mpki =
        static_cast<double>(out.branch.mispredictions) / ki;
    out.rates.l2_apki = static_cast<double>(out.memory.serviced_at[1]) / ki;
    out.rates.llc_apki = static_cast<double>(out.memory.serviced_at[2]) / ki;
    out.rates.dram_apki = static_cast<double>(out.memory.serviced_at[3]) / ki;
  }
  out.cpi = interval_cpi(core, out.rates);
  return out;
}

std::string threshold_count_program(std::uint64_t n,
                                    std::uint64_t threshold) {
  std::ostringstream os;
  os << "    li   r1, 0          # count above threshold\n"
     << "    li   r2, 0          # i\n"
     << "    li   r3, " << n << "\n"
     << "    li   r4, " << threshold << "\n"
     << "    li   r6, 0x2000     # output array base\n"
     << "loop:\n"
     << "    in   r5\n"
     << "    st   r5, r6, 0      # record the sample\n"
     << "    addi r6, r6, 8\n"
     << "    blt  r5, r4, skip   # data-dependent branch\n"
     << "    addi r1, r1, 1\n"
     << "skip:\n"
     << "    addi r2, r2, 1\n"
     << "    blt  r2, r3, loop\n"
     << "    out  r1\n"
     << "    halt\n";
  return os.str();
}

}  // namespace arch21::cpu
