#pragma once
// End-to-end microarchitectural profiling: run an SR1 program with a
// branch predictor on its branch stream and a cache hierarchy on its
// memory stream, then evaluate the interval model.  One call takes a
// *program* to a *CPI breakdown* -- software through all the
// "invisible" 20th-century machinery the paper's section 1 credits for
// the 80x.

#include <memory>
#include <string>

#include "cpu/branch.hpp"
#include "cpu/interval.hpp"
#include "energy/catalogue.hpp"
#include "isa/machine.hpp"
#include "mem/hierarchy.hpp"

namespace arch21::cpu {

/// Result of a profiled run.
struct ProfiledRun {
  isa::StopReason stop = isa::StopReason::Halted;
  isa::MachineStats machine;
  PredictorStats branch;
  mem::HierarchyStats memory;
  WorkloadRates rates;
  CpiBreakdown cpi;
};

/// Cache geometry for the profiled run.
struct MemoryGeometry {
  mem::CacheConfig l1{.size_bytes = 32768, .line_bytes = 64, .ways = 8};
  mem::CacheConfig l2{.size_bytes = 262144, .line_bytes = 64, .ways = 8};
  mem::CacheConfig llc{.size_bytes = 1 << 22, .line_bytes = 64, .ways = 16};
};

/// Assemble-and-run with full instrumentation.  Throws
/// std::invalid_argument on assembly errors.
ProfiledRun run_profiled(const std::string& source,
                         const std::vector<std::uint64_t>& inputs,
                         BranchPredictor& predictor,
                         const CoreParams& core = {},
                         const MemoryGeometry& geometry = {},
                         std::uint64_t max_instructions = 10'000'000);

/// Canned workload with data-dependent branches: counts inputs above a
/// threshold while summing them -- the branch stream is as random as the
/// data, separating gshare/bimodal from static prediction.
std::string threshold_count_program(std::uint64_t n, std::uint64_t threshold);

}  // namespace arch21::cpu
