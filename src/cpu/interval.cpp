#include "cpu/interval.hpp"

#include <algorithm>
#include <stdexcept>

namespace arch21::cpu {

CpiBreakdown interval_cpi(const CoreParams& core, const WorkloadRates& w) {
  if (core.issue_width < 1 || core.mlp < 1) {
    throw std::invalid_argument("interval_cpi: bad core parameters");
  }
  CpiBreakdown b;
  b.base = 1.0 / core.issue_width;
  b.branch = w.branch_mpki / 1000.0 * core.branch_penalty;
  b.l2 = w.l2_apki / 1000.0 * core.l2_latency;
  b.llc = w.llc_apki / 1000.0 * core.llc_latency;
  b.dram = w.dram_apki / 1000.0 * (core.dram_latency / core.mlp);
  return b;
}

}  // namespace arch21::cpu
