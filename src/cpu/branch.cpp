#include "cpu/branch.hpp"

#include <stdexcept>

namespace arch21::cpu {

namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

void bump(std::uint8_t& counter, bool taken) {
  if (taken) {
    if (counter < 3) ++counter;
  } else {
    if (counter > 0) --counter;
  }
}

}  // namespace

bool BranchPredictor::observe(std::uint64_t pc, bool taken) {
  const bool predicted = predict(pc);
  ++stats_.predictions;
  if (predicted != taken) ++stats_.mispredictions;
  train(pc, taken);
  return predicted == taken;
}

Bimodal::Bimodal(std::size_t entries) : table_(entries, 1) {
  if (!is_pow2(entries)) {
    throw std::invalid_argument("Bimodal: entries must be a power of two");
  }
}

bool Bimodal::predict(std::uint64_t pc) {
  return table_[pc & (table_.size() - 1)] >= 2;
}

void Bimodal::train(std::uint64_t pc, bool taken) {
  bump(table_[pc & (table_.size() - 1)], taken);
}

Gshare::Gshare(std::size_t entries, unsigned history_bits)
    : table_(entries, 1),
      history_mask_((std::uint64_t{1} << history_bits) - 1) {
  if (!is_pow2(entries)) {
    throw std::invalid_argument("Gshare: entries must be a power of two");
  }
  if (history_bits == 0 || history_bits > 32) {
    throw std::invalid_argument("Gshare: history bits in [1, 32]");
  }
}

std::size_t Gshare::index(std::uint64_t pc) const {
  return static_cast<std::size_t>((pc ^ history_) & (table_.size() - 1));
}

bool Gshare::predict(std::uint64_t pc) { return table_[index(pc)] >= 2; }

void Gshare::train(std::uint64_t pc, bool taken) {
  bump(table_[index(pc)], taken);
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
}

}  // namespace arch21::cpu
