#include "par/schedule.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>

namespace arch21::par {

CommModel CommModel::uniform(double s_per_byte, double j_per_byte) {
  CommModel m;
  m.latency = [s_per_byte](std::uint32_t a, std::uint32_t b, double bytes) {
    return a == b ? 0.0 : s_per_byte * bytes;
  };
  m.energy = [j_per_byte](std::uint32_t a, std::uint32_t b, double bytes) {
    return a == b ? 0.0 : j_per_byte * bytes;
  };
  return m;
}

CoreModel CoreModel::homogeneous(std::uint32_t cores, double ops_per_second,
                                 double j_per_op) {
  if (cores == 0 || ops_per_second <= 0) {
    throw std::invalid_argument("CoreModel: bad parameters");
  }
  CoreModel m;
  m.s_per_op.assign(cores, 1.0 / ops_per_second);
  m.j_per_op = j_per_op;
  return m;
}

double ScheduleResult::utilization() const {
  if (makespan_s <= 0 || core_busy_s.empty()) return 0;
  double busy = 0;
  for (double b : core_busy_s) busy += b;
  return busy / (makespan_s * static_cast<double>(core_busy_s.size()));
}

namespace {

/// Upward rank: longest work path from task to any exit (priority for
/// list scheduling; scheduling by decreasing rank is topologically safe).
std::vector<double> upward_ranks(const TaskGraph& g) {
  const auto order = g.topo_order();
  std::vector<double> rank(g.size(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Task& t = g.task(*it);
    double best = 0;
    for (TaskId s : t.succ) best = std::max(best, rank[s]);
    rank[*it] = t.work_ops + best;
  }
  return rank;
}

}  // namespace

ScheduleResult list_schedule(const TaskGraph& g, const CoreModel& cores,
                             const CommModel& comm) {
  const auto ranks = upward_ranks(g);
  const std::uint32_t P = static_cast<std::uint32_t>(cores.s_per_op.size());

  // Tasks sorted by decreasing rank (ties by id for determinism).
  std::vector<TaskId> order(g.size());
  for (TaskId i = 0; i < g.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (ranks[a] != ranks[b]) return ranks[a] > ranks[b];
    return a < b;
  });

  ScheduleResult res;
  res.core_busy_s.assign(P, 0);
  res.placement.assign(g.size(), 0);
  std::vector<double> core_free(P, 0);
  std::vector<double> finish(g.size(), 0);

  for (TaskId id : order) {
    const Task& t = g.task(id);
    double best_eft = 1e300;
    std::uint32_t best_core = 0;
    double best_start = 0;
    for (std::uint32_t c = 0; c < P; ++c) {
      double ready = core_free[c];
      for (TaskId p : t.pred) {
        const double arr =
            finish[p] + comm.latency(res.placement[p], c, g.task(p).out_bytes);
        ready = std::max(ready, arr);
      }
      const double eft = ready + t.work_ops * cores.s_per_op[c];
      if (eft < best_eft) {
        best_eft = eft;
        best_core = c;
        best_start = ready;
      }
    }
    res.placement[id] = best_core;
    finish[id] = best_eft;
    core_free[best_core] = best_eft;
    res.core_busy_s[best_core] += t.work_ops * cores.s_per_op[best_core];
    res.compute_energy_j += t.work_ops * cores.j_per_op;
    for (TaskId p : t.pred) {
      if (res.placement[p] != best_core) {
        res.comm_energy_j +=
            comm.energy(res.placement[p], best_core, g.task(p).out_bytes);
        res.comm_bytes += g.task(p).out_bytes;
      }
    }
    res.makespan_s = std::max(res.makespan_s, best_eft);
    (void)best_start;
  }
  return res;
}

ScheduleResult work_stealing_schedule(const TaskGraph& g,
                                      const CoreModel& cores,
                                      const CommModel& comm,
                                      double steal_latency_s,
                                      std::uint64_t seed) {
  const std::uint32_t P = static_cast<std::uint32_t>(cores.s_per_op.size());
  Rng rng(seed);

  ScheduleResult res;
  res.core_busy_s.assign(P, 0);
  res.placement.assign(g.size(), 0);

  std::vector<std::uint32_t> indeg(g.size(), 0);
  for (TaskId i = 0; i < g.size(); ++i) {
    indeg[i] = static_cast<std::uint32_t>(g.task(i).pred.size());
  }
  std::vector<double> finish(g.size(), 0);
  std::vector<std::deque<TaskId>> deques(P);
  std::vector<bool> idle(P, true);
  std::vector<double> idle_since(P, 0);

  // Seed initial ready tasks round-robin.
  {
    std::uint32_t c = 0;
    for (TaskId i = 0; i < g.size(); ++i) {
      if (indeg[i] == 0) {
        deques[c % P].push_back(i);
        c++;
      }
    }
  }

  struct Ev {
    double t;
    std::uint32_t core;
    TaskId task;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.core > b.core;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> events;
  std::size_t completed = 0;

  // Start a task on a core at time `now` (after possible steal delay).
  auto start_task = [&](std::uint32_t c, TaskId id, double now) {
    const Task& t = g.task(id);
    double ready = now;
    for (TaskId p : t.pred) {
      ready = std::max(
          ready, finish[p] + comm.latency(res.placement[p], c, g.task(p).out_bytes));
    }
    res.placement[id] = c;
    const double dur = t.work_ops * cores.s_per_op[c];
    const double end = ready + dur;
    res.core_busy_s[c] += dur;
    res.compute_energy_j += t.work_ops * cores.j_per_op;
    for (TaskId p : t.pred) {
      if (res.placement[p] != c) {
        res.comm_energy_j += comm.energy(res.placement[p], c, g.task(p).out_bytes);
        res.comm_bytes += g.task(p).out_bytes;
      }
    }
    idle[c] = false;
    events.push({end, c, id});
  };

  // Try to find work for core c at time `now`; returns true if started.
  auto seek_work = [&](std::uint32_t c, double now) {
    if (!deques[c].empty()) {
      const TaskId id = deques[c].back();  // LIFO own end
      deques[c].pop_back();
      start_task(c, id, now);
      return true;
    }
    // Steal: try up to P random victims, each attempt costs latency.
    double t = now;
    for (std::uint32_t attempt = 0; attempt < P; ++attempt) {
      t += steal_latency_s;
      const std::uint32_t victim = static_cast<std::uint32_t>(rng.below(P));
      if (victim != c && !deques[victim].empty()) {
        const TaskId id = deques[victim].front();  // FIFO thief end
        deques[victim].pop_front();
        start_task(c, id, t);
        return true;
      }
    }
    idle[c] = true;
    idle_since[c] = now;
    return false;
  };

  // Kick off all cores at t = 0.
  for (std::uint32_t c = 0; c < P; ++c) seek_work(c, 0);

  while (completed < g.size()) {
    if (events.empty()) {
      throw std::logic_error("work_stealing_schedule: deadlock (bad DAG?)");
    }
    const Ev ev = events.top();
    events.pop();
    // Task ev.task completed on ev.core at ev.t.
    finish[ev.task] = ev.t;
    ++completed;
    res.makespan_s = std::max(res.makespan_s, ev.t);

    // Release successors; prefer waking idle cores immediately.
    for (TaskId s : g.task(ev.task).succ) {
      if (--indeg[s] == 0) {
        deques[ev.core].push_back(s);
      }
    }
    // The finishing core looks for its next task.
    seek_work(ev.core, ev.t);
    // Wake idle cores if work is available anywhere.
    bool any_work = false;
    for (std::uint32_t c = 0; c < P; ++c) {
      if (!deques[c].empty()) {
        any_work = true;
        break;
      }
    }
    if (any_work) {
      for (std::uint32_t c = 0; c < P; ++c) {
        if (idle[c]) seek_work(c, ev.t);
      }
    }
  }
  return res;
}

}  // namespace arch21::par
