#include "par/laws.hpp"

#include <cmath>
#include <stdexcept>

namespace arch21::par {

namespace {

void check_f(double f) {
  if (f < 0 || f > 1) throw std::invalid_argument("parallel fraction not in [0,1]");
}

}  // namespace

double amdahl_speedup(double f, double p) {
  check_f(f);
  if (p < 1) throw std::invalid_argument("amdahl_speedup: p < 1");
  return 1.0 / ((1.0 - f) + f / p);
}

double gustafson_speedup(double f, double p) {
  check_f(f);
  if (p < 1) throw std::invalid_argument("gustafson_speedup: p < 1");
  return (1.0 - f) + f * p;
}

double core_perf(double r) {
  if (r < 1) throw std::invalid_argument("core_perf: r < 1");
  return std::sqrt(r);
}

double hm_symmetric(double f, double n, double r) {
  check_f(f);
  if (r < 1 || r > n) throw std::invalid_argument("hm_symmetric: bad r");
  const double perf = core_perf(r);
  const double cores = n / r;
  return 1.0 / ((1.0 - f) / perf + f / (perf * cores));
}

double hm_asymmetric(double f, double n, double r) {
  check_f(f);
  if (r < 1 || r > n) throw std::invalid_argument("hm_asymmetric: bad r");
  const double perf = core_perf(r);
  // Parallel phase: big core + (n - r) base cores all contribute.
  return 1.0 / ((1.0 - f) / perf + f / (perf + (n - r)));
}

double hm_dynamic(double f, double n) {
  check_f(f);
  if (n < 1) throw std::invalid_argument("hm_dynamic: n < 1");
  return 1.0 / ((1.0 - f) / core_perf(n) + f / n);
}

BestSymmetric hm_symmetric_best(double f, double n) {
  BestSymmetric best;
  best.r = 1;
  best.speedup = hm_symmetric(f, n, 1);
  for (double r = 2; r <= n; r *= 2) {
    const double s = hm_symmetric(f, n, r);
    if (s > best.speedup) {
      best.speedup = s;
      best.r = r;
    }
  }
  return best;
}

std::vector<SpeedupRow> hm_sweep(double f, const std::vector<double>& sizes) {
  std::vector<SpeedupRow> rows;
  rows.reserve(sizes.size());
  for (double n : sizes) {
    SpeedupRow row;
    row.n = n;
    row.symmetric = hm_symmetric_best(f, n).speedup;
    double best_asym = 0;
    for (double r = 1; r <= n; r *= 2) {
      best_asym = std::max(best_asym, hm_asymmetric(f, n, r));
    }
    row.asymmetric = best_asym;
    row.dynamic = hm_dynamic(f, n);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace arch21::par
