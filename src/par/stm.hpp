#pragma once
// Word-based software transactional memory (TL2-style) over a simulated
// shared memory, plus a deterministic concurrent workload driver.
//
// Paper hook (section 2.4, Improving Programmability): "Transactional
// memory (TM) is a recent example that seeks to significantly simplify
// parallelization and synchronization in multithreaded code.  TM research
// has spanned all levels of the system stack, and is now entering the
// commercial mainstream."
//
// The implementation is the real algorithm, not a cost model:
//   * a global version clock;
//   * per-word versioned write-locks;
//   * transactions read through their write set, validate read versions
//     against their start snapshot, lock the write set at commit, bump
//     the clock, publish, and release.
// Threads are *logical*: a driver interleaves transaction steps with a
// seeded RNG, so every race and abort is reproducible bit-for-bit.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/rng.hpp"

namespace arch21::par {

/// The shared memory: `words` 64-bit cells with version/lock metadata.
class StmHeap {
 public:
  explicit StmHeap(std::size_t words);

  std::size_t size() const noexcept { return mem_.size(); }

  /// Non-transactional access (initialization / verification only).
  std::uint64_t peek(std::size_t addr) const { return mem_.at(addr); }
  void poke(std::size_t addr, std::uint64_t v) { mem_.at(addr) = v; }

  std::uint64_t clock() const noexcept { return clock_; }

 private:
  friend class Txn;
  struct Word {
    std::uint64_t version = 0;
    bool locked = false;
    std::uint32_t owner = 0;
  };
  std::vector<std::uint64_t> mem_;
  std::vector<Word> meta_;
  std::uint64_t clock_ = 0;
};

/// One transaction attempt.  Use via StmHeap + Txn:
///   Txn t(heap, thread_id);
///   auto v = t.read(a);  t.write(b, v + 1);
///   if (t.commit()) { ... }
class Txn {
 public:
  Txn(StmHeap& heap, std::uint32_t thread_id);

  /// Transactional read; returns nullopt on conflict (caller must abort).
  std::optional<std::uint64_t> read(std::size_t addr);

  /// Transactional write (buffered until commit).
  void write(std::size_t addr, std::uint64_t value);

  /// Two-phase commit: lock write set, validate read set, publish.
  /// Returns false (and rolls back) on conflict.
  bool commit();

  /// Explicit abort (drops buffered writes; always safe).
  void abort();

  bool finished() const noexcept { return finished_; }

 private:
  bool lock_write_set();
  void unlock_write_set();

  StmHeap& h_;
  std::uint32_t tid_;
  std::uint64_t start_clock_;
  std::vector<std::pair<std::size_t, std::uint64_t>> read_set_;  // addr, ver
  std::vector<std::pair<std::size_t, std::uint64_t>> write_set_; // addr, val
  bool finished_ = false;
};

/// Workload driver: `threads` logical threads each run `txns_per_thread`
/// transactions; the body receives (Txn&, thread, attempt-rng) and builds
/// the read/write set; the driver interleaves *whole transactions* in a
/// seeded random order with bounded retry.
struct StmRunStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  double abort_rate() const noexcept {
    const auto total = commits + aborts;
    return total ? static_cast<double>(aborts) / static_cast<double>(total) : 0;
  }
};

/// A step-interleaved run: transactions from different threads are
/// interleaved at read/write granularity, which is where real conflicts
/// live.  The body is a list of operations generated up front per
/// transaction: reads then a computed set of writes.
struct TxnScript {
  std::vector<std::size_t> reads;
  /// Writes: (address, delta).  The committed value is the value this
  /// transaction READ at that address plus delta (the address must appear
  /// in `reads`), making read-modify-write races observable.
  std::vector<std::pair<std::size_t, std::int64_t>> writes;
};

/// Run scripted transactions with random step interleaving.
/// At most `max_concurrent` transactions are live at once (a realistic
/// thread count -- an unbounded window would make every late transaction
/// abort against every earlier commit).  Each script retries until it
/// commits (bounded at 1000 attempts).
StmRunStats run_interleaved(StmHeap& heap,
                            const std::vector<TxnScript>& scripts,
                            std::uint64_t seed,
                            std::size_t max_concurrent = 8);

/// Convenience: bank-transfer scripts (move 1 unit between random
/// accounts) -- the classic atomicity workload.
std::vector<TxnScript> make_transfer_scripts(std::size_t accounts,
                                             std::size_t count,
                                             std::uint64_t seed);

}  // namespace arch21::par
