#include "par/sync.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace arch21::par {

double BarrierModel::latency(std::uint32_t p) const {
  if (p <= 1) return 0;
  const double levels = std::ceil(std::log2(static_cast<double>(p)));
  // Up-sweep plus down-sweep.
  return 2.0 * levels * hop_latency_s;
}

double BarrierModel::energy(std::uint32_t p) const {
  if (p <= 1) return 0;
  // A combining tree sends ~2(P-1) messages per episode.
  return 2.0 * static_cast<double>(p - 1) * hop_energy_j;
}

double LockModel::rho(std::uint32_t p, double arrival_hz) const {
  const double service = critical_section_s + transfer_s;
  return static_cast<double>(p) * arrival_hz * service;
}

double LockModel::mean_sojourn(std::uint32_t p, double arrival_hz) const {
  const double service = critical_section_s + transfer_s;
  const double r = rho(p, arrival_hz);
  if (r >= 1.0) return std::numeric_limits<double>::infinity();
  // M/M/1 sojourn: S / (1 - rho).
  return service / (1.0 - r);
}

}  // namespace arch21::par
