#include "par/scaling.hpp"

#include <cmath>

#include "par/sync.hpp"
#include "util/units.hpp"

namespace arch21::par {

std::vector<ScalingRow> strong_scaling(const ScalingWorkload& w,
                                       const energy::Catalogue& cat,
                                       std::uint32_t max_cores) {
  std::vector<ScalingRow> rows;
  BarrierModel barrier;

  double t1 = 0;  // single-core time, set on the first row

  for (std::uint32_t side = 1; side * side <= max_cores; side *= 2) {
    const std::uint32_t p = side * side;
    noc::MeshConfig mcfg;
    mcfg.width = side;
    mcfg.height = side;
    const noc::Mesh mesh(mcfg);

    ScalingRow r;
    r.cores = p;

    // Compute: the domain splits into p tiles.
    const double ops_per_core = w.total_ops / static_cast<double>(p);
    const double core_rate =
        w.core_ghz * units::giga * w.core_ops_per_cycle;
    const double compute_time = ops_per_core / core_rate;
    r.compute_energy_j = w.total_ops * cat.fp_fma();

    // Communication: each tile exchanges its halo each iteration.  A
    // square tile of A = domain/p elements has perimeter 4*sqrt(A).
    const double tile_elems = w.domain_elems / static_cast<double>(p);
    const double halo_elems = 4.0 * std::sqrt(tile_elems);
    const double bytes_per_iter = halo_elems * w.halo_bytes_per_elem;
    double comm_time = 0;
    // Shared-data traffic: every op's LLC-bank traffic crosses the mesh
    // at the mean uniform distance, which grows as sqrt(p).
    if (p > 1) {
      r.comm_energy_j += w.total_ops * w.shared_bytes_per_op * 8.0 *
                         mesh.mean_energy_per_bit();
    }
    if (p > 1) {
      // Neighbor exchange: 1-hop messages on the mesh, 4 neighbors.
      const auto cost = mesh.send(0, 1, bytes_per_iter);
      comm_time = static_cast<double>(w.iterations) * cost.latency_s * 4.0;
      r.comm_energy_j += static_cast<double>(w.iterations) *
                         static_cast<double>(p) * 4.0 * cost.energy_j;
      r.sync_energy_j =
          static_cast<double>(w.iterations) * barrier.energy(p);
      comm_time += static_cast<double>(w.iterations) * barrier.latency(p);
    }

    r.time_s = compute_time + comm_time;
    if (rows.empty()) t1 = r.time_s;
    r.speedup = t1 / r.time_s;
    const double total_e =
        r.compute_energy_j + r.comm_energy_j + r.sync_energy_j;
    r.comm_fraction =
        total_e > 0 ? (r.comm_energy_j + r.sync_energy_j) / total_e : 0;
    r.energy_per_op_j = total_e / w.total_ops;
    rows.push_back(r);
  }
  return rows;
}

}  // namespace arch21::par
