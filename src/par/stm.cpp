#include "par/stm.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace arch21::par {

StmHeap::StmHeap(std::size_t words) : mem_(words, 0), meta_(words) {
  if (words == 0) throw std::invalid_argument("StmHeap: zero words");
}

Txn::Txn(StmHeap& heap, std::uint32_t thread_id)
    : h_(heap), tid_(thread_id), start_clock_(heap.clock_) {}

std::optional<std::uint64_t> Txn::read(std::size_t addr) {
  if (finished_) throw std::logic_error("Txn::read after finish");
  // Read-your-own-writes.
  for (const auto& [a, v] : write_set_) {
    if (a == addr) return v;
  }
  const auto& w = h_.meta_.at(addr);
  if (w.locked) return std::nullopt;  // writer in flight
  const std::uint64_t v = h_.mem_[addr];
  // TL2 post-validation: the version must not exceed our snapshot, or the
  // word changed since we started.
  if (w.version > start_clock_) return std::nullopt;
  read_set_.push_back({addr, w.version});
  return v;
}

void Txn::write(std::size_t addr, std::uint64_t value) {
  if (finished_) throw std::logic_error("Txn::write after finish");
  if (addr >= h_.mem_.size()) throw std::out_of_range("Txn::write");
  for (auto& [a, v] : write_set_) {
    if (a == addr) {
      v = value;
      return;
    }
  }
  write_set_.push_back({addr, value});
}

bool Txn::lock_write_set() {
  // Sort by address for deterministic, deadlock-free acquisition.
  std::sort(write_set_.begin(), write_set_.end());
  for (std::size_t i = 0; i < write_set_.size(); ++i) {
    auto& w = h_.meta_[write_set_[i].first];
    if (w.locked) {
      // Back out the locks taken so far.
      for (std::size_t j = 0; j < i; ++j) {
        h_.meta_[write_set_[j].first].locked = false;
      }
      return false;
    }
    w.locked = true;
    w.owner = tid_;
  }
  return true;
}

void Txn::unlock_write_set() {
  for (const auto& [a, v] : write_set_) h_.meta_[a].locked = false;
}

bool Txn::commit() {
  if (finished_) throw std::logic_error("Txn::commit after finish");
  if (write_set_.empty()) {
    // Read-only: the per-read validation already guaranteed a consistent
    // snapshot at start_clock_.
    finished_ = true;
    return true;
  }
  if (!lock_write_set()) {
    abort();
    return false;
  }
  // Validate the read set: versions unchanged and not locked by others.
  for (const auto& [addr, ver] : read_set_) {
    const auto& w = h_.meta_[addr];
    const bool locked_by_other = w.locked && w.owner != tid_;
    if (locked_by_other || w.version != ver) {
      unlock_write_set();
      abort();
      return false;
    }
  }
  // Publish.
  const std::uint64_t commit_version = ++h_.clock_;
  for (const auto& [addr, val] : write_set_) {
    h_.mem_[addr] = val;
    h_.meta_[addr].version = commit_version;
    h_.meta_[addr].locked = false;
  }
  finished_ = true;
  return true;
}

void Txn::abort() {
  write_set_.clear();
  read_set_.clear();
  finished_ = true;
}

StmRunStats run_interleaved(StmHeap& heap,
                            const std::vector<TxnScript>& scripts,
                            std::uint64_t seed,
                            std::size_t max_concurrent) {
  StmRunStats stats;
  Rng rng(seed);
  if (max_concurrent == 0) max_concurrent = 1;

  struct Live {
    std::uint32_t tid = 0;
    const TxnScript* script;
    std::unique_ptr<Txn> txn;
    std::size_t step = 0;  ///< index into reads, then writes, then commit
    std::unordered_map<std::size_t, std::uint64_t> read_values;
    std::uint32_t attempts = 0;
  };

  // Admission window: only `max_concurrent` transactions are live; the
  // rest queue and enter (with a fresh snapshot) as slots free up.
  std::vector<Live> live;
  std::size_t next_script = 0;
  auto admit = [&]() {
    while (live.size() < max_concurrent && next_script < scripts.size()) {
      Live l;
      l.tid = static_cast<std::uint32_t>(next_script);
      l.script = &scripts[next_script];
      l.txn = std::make_unique<Txn>(heap, l.tid);
      live.push_back(std::move(l));
      ++next_script;
    }
  };
  admit();

  auto restart = [&](Live& l) {
    ++stats.aborts;
    ++l.attempts;
    if (l.attempts > 1000) {
      throw std::runtime_error("run_interleaved: livelock (1000 aborts)");
    }
    l.txn = std::make_unique<Txn>(heap, l.tid);
    l.step = 0;
    l.read_values.clear();
  };

  while (!live.empty()) {
    const std::size_t pick = rng.below(live.size());
    Live& l = live[pick];
    const auto& sc = *l.script;
    const std::size_t nreads = sc.reads.size();
    const std::size_t nwrites = sc.writes.size();

    if (l.step < nreads) {
      const std::size_t addr = sc.reads[l.step];
      const auto v = l.txn->read(addr);
      if (!v) {
        restart(l);
        continue;
      }
      l.read_values[addr] = *v;
      ++l.step;
    } else if (l.step < nreads + nwrites) {
      const auto& [addr, delta] = sc.writes[l.step - nreads];
      const auto it = l.read_values.find(addr);
      const std::uint64_t base = it != l.read_values.end() ? it->second : 0;
      l.txn->write(addr, base + static_cast<std::uint64_t>(delta));
      ++l.step;
    } else {
      if (l.txn->commit()) {
        ++stats.commits;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        admit();
      } else {
        restart(l);
      }
    }
  }
  return stats;
}

std::vector<TxnScript> make_transfer_scripts(std::size_t accounts,
                                             std::size_t count,
                                             std::uint64_t seed) {
  if (accounts < 2) throw std::invalid_argument("make_transfer_scripts");
  Rng rng(seed);
  std::vector<TxnScript> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t a = rng.below(accounts);
    std::size_t b = rng.below(accounts);
    while (b == a) b = rng.below(accounts);
    TxnScript s;
    s.reads = {a, b};
    s.writes = {{a, -1}, {b, +1}};
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace arch21::par
