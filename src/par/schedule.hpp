#pragma once
// Task-DAG schedulers with communication awareness.
//
// Two schedulers are provided:
//   * ListScheduler -- deterministic HEFT-style list scheduling: tasks in
//     topological order (critical-path-length priority), each placed on
//     the core giving the earliest finish time, accounting for
//     inter-core communication latency.
//   * WorkStealingScheduler -- randomized-victim work stealing with
//     per-steal latency, the runtime model the paper's "fine-grain
//     multitasking" runtimes use.
//
// Both charge communication time and energy through a CommModel so the
// 1000-way-parallelism experiment can show compute energy shrinking per
// core while communication energy grows with scale.

#include <cstdint>
#include <functional>
#include <vector>

#include "par/taskgraph.hpp"
#include "util/rng.hpp"

namespace arch21::par {

/// Inter-core communication model.
struct CommModel {
  /// Seconds to move `bytes` from core `from` to core `to` (0 when equal).
  std::function<double(std::uint32_t from, std::uint32_t to, double bytes)>
      latency;
  /// Joules for the same transfer.
  std::function<double(std::uint32_t from, std::uint32_t to, double bytes)>
      energy;

  /// A uniform model: fixed per-byte latency/energy between distinct cores.
  static CommModel uniform(double s_per_byte, double j_per_byte);
};

/// Core compute model: seconds per operation (per-core, allowing
/// heterogeneous speeds) and joules per operation.
struct CoreModel {
  std::vector<double> s_per_op;  ///< size = core count
  double j_per_op = 1e-12;

  static CoreModel homogeneous(std::uint32_t cores, double ops_per_second,
                               double j_per_op);
};

/// Result of a schedule.
struct ScheduleResult {
  double makespan_s = 0;
  double compute_energy_j = 0;
  double comm_energy_j = 0;
  double comm_bytes = 0;
  std::vector<double> core_busy_s;      ///< per-core busy time
  std::vector<std::uint32_t> placement; ///< task -> core

  double utilization() const;
  double total_energy_j() const noexcept {
    return compute_energy_j + comm_energy_j;
  }
};

/// Deterministic communication-aware list scheduler.
ScheduleResult list_schedule(const TaskGraph& g, const CoreModel& cores,
                             const CommModel& comm);

/// Randomized work-stealing execution; `steal_latency_s` per steal
/// attempt.  Deterministic for a fixed seed.
ScheduleResult work_stealing_schedule(const TaskGraph& g,
                                      const CoreModel& cores,
                                      const CommModel& comm,
                                      double steal_latency_s,
                                      std::uint64_t seed);

}  // namespace arch21::par
