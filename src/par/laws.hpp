#pragma once
// Multicore speedup laws: Amdahl, Gustafson, and the Hill-Marty "Amdahl's
// law in the multicore era" family (symmetric / asymmetric / dynamic
// chips built from base-core equivalents).  The white paper's lead
// coordinator co-authored the Hill-Marty model; its message -- asymmetric
// and dynamic chips soften, but do not repeal, the serial bottleneck --
// is exactly the paper's "rethink how we design for 1,000-way
// parallelism".
//
// Conventions: a chip has a budget of `n` base-core equivalents (BCEs).
// A core built from r BCEs has sequential performance perf(r) = sqrt(r)
// (Pollack's rule).  `f` is the parallelizable fraction of the work.

#include <vector>

namespace arch21::par {

/// Classic Amdahl speedup on p equal processors.
double amdahl_speedup(double f, double p);

/// Gustafson scaled speedup on p processors.
double gustafson_speedup(double f, double p);

/// Pollack's-rule single-core performance of an r-BCE core.
double core_perf(double r);

/// Hill-Marty symmetric chip: n BCEs split into n/r cores of r BCEs each.
double hm_symmetric(double f, double n, double r);

/// Hill-Marty asymmetric chip: one big r-BCE core plus (n - r) 1-BCE
/// cores; serial phase runs on the big core, parallel phase on all.
double hm_asymmetric(double f, double n, double r);

/// Hill-Marty dynamic chip: all n BCEs fuse into one core of perf(n)
/// for serial phases and disperse into n 1-BCE cores for parallel phases.
double hm_dynamic(double f, double n);

/// Best r (BCEs per core) for a symmetric chip, by scan over 1..n.
struct BestSymmetric {
  double r = 1;
  double speedup = 1;
};
BestSymmetric hm_symmetric_best(double f, double n);

/// One row of a speedup sweep.
struct SpeedupRow {
  double n;
  double symmetric;   ///< best-r symmetric
  double asymmetric;  ///< best-r asymmetric
  double dynamic;
};

/// Sweep chip sizes (BCEs) for a fixed parallel fraction.
std::vector<SpeedupRow> hm_sweep(double f, const std::vector<double>& sizes);

}  // namespace arch21::par
