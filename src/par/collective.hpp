#pragma once
// Collective-communication cost models (alpha-beta): the MPI-style
// primitives HPC codes are built from, costed on a cluster link.
//
//   alpha = per-message latency (s), beta = per-byte time (s/B)
//
//   broadcast (binomial tree):  ceil(log2 P) x (alpha + n beta)
//   reduce (binomial tree):     ceil(log2 P) x (alpha + n beta + n gamma)
//   allreduce (tree):           reduce + broadcast
//   allreduce (ring):           2 (P-1) alpha + 2 n beta (P-1)/P + n gamma (P-1)/P
//   allgather (ring):           (P-1) (alpha + n/P beta)
//
// The ring trades latency (P-1 steps) for bandwidth optimality; the tree
// is latency-optimal.  The crossover vs message size is the classic
// result the tests pin down, and the energy side reuses the link model.

#include <cstdint>

namespace arch21::par {

/// Machine parameters for collectives.
struct AlphaBeta {
  double alpha_s = 2e-6;    ///< per-message latency
  double beta_s_per_b = 1e-9;  ///< inverse bandwidth (1 GB/s default)
  double gamma_s_per_b = 1e-10; ///< per-byte local reduction compute
};

/// Costs in seconds for P ranks and n-byte payloads.
double bcast_tree_s(const AlphaBeta& m, unsigned p, double n);
double reduce_tree_s(const AlphaBeta& m, unsigned p, double n);
double allreduce_tree_s(const AlphaBeta& m, unsigned p, double n);
double allreduce_ring_s(const AlphaBeta& m, unsigned p, double n);
double allgather_ring_s(const AlphaBeta& m, unsigned p, double n);

/// Message size at which the ring allreduce starts beating the tree
/// (bisection on n); returns 0 if the ring always wins, infinity if never
/// within `max_bytes`.
double allreduce_crossover_bytes(const AlphaBeta& m, unsigned p,
                                 double max_bytes = 1e12);

}  // namespace arch21::par
