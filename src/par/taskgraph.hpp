#pragma once
// Task DAGs and generators.  A task has compute work (operations) and
// produces output bytes consumed by its successors; schedulers
// (par/schedule.hpp) place tasks on cores and charge inter-core edges
// through a communication model.  Generators cover the standard shapes:
// fork-join, layered random DAGs, 2-D stencil sweeps (wavefront
// parallelism), and map-reduce.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace arch21::par {

/// Node id in a task graph.
using TaskId = std::uint32_t;

/// One task.
struct Task {
  double work_ops = 1;     ///< compute operations
  double out_bytes = 0;    ///< bytes sent along each outgoing edge
  std::vector<TaskId> succ;
  std::vector<TaskId> pred;
};

/// A directed acyclic task graph.
class TaskGraph {
 public:
  /// Add a task; returns its id.
  TaskId add(double work_ops, double out_bytes = 0);

  /// Add a dependency from -> to (from must finish first).
  void add_edge(TaskId from, TaskId to);

  std::size_t size() const noexcept { return tasks_.size(); }
  const Task& task(TaskId id) const { return tasks_.at(id); }
  Task& task(TaskId id) { return tasks_.at(id); }

  /// Topological order (Kahn); throws std::logic_error if cyclic.
  std::vector<TaskId> topo_order() const;

  /// Total compute work.
  double total_work() const;

  /// Critical-path work (longest path by work_ops; ignores comms).
  double critical_path() const;

  /// Sum of bytes over all edges.
  double total_edge_bytes() const;

  /// Maximum speedup possible by work/span.
  double inherent_parallelism() const {
    const double cp = critical_path();
    return cp > 0 ? total_work() / cp : 1.0;
  }

 private:
  std::vector<Task> tasks_;
};

// --- generators ---------------------------------------------------------

/// Fork-join: a source task, `width` independent workers, a sink.
TaskGraph make_fork_join(std::uint32_t width, double work_per_task,
                         double bytes_per_edge);

/// `layers` layers of `width` tasks; each task depends on `fan_in` random
/// tasks of the previous layer.
TaskGraph make_layered(std::uint32_t layers, std::uint32_t width,
                       std::uint32_t fan_in, double work_per_task,
                       double bytes_per_edge, std::uint64_t seed);

/// 2-D wavefront (e.g. dynamic-programming sweep): task (i,j) depends on
/// (i-1,j) and (i,j-1).
TaskGraph make_wavefront(std::uint32_t rows, std::uint32_t cols,
                         double work_per_task, double bytes_per_edge);

/// Map-reduce: `mappers` independent map tasks feeding `reducers` tasks
/// (all-to-all shuffle), then a final merge.
TaskGraph make_map_reduce(std::uint32_t mappers, std::uint32_t reducers,
                          double map_work, double reduce_work,
                          double shuffle_bytes);

}  // namespace arch21::par
