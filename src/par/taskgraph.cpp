#include "par/taskgraph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace arch21::par {

TaskId TaskGraph::add(double work_ops, double out_bytes) {
  Task t;
  t.work_ops = work_ops;
  t.out_bytes = out_bytes;
  tasks_.push_back(std::move(t));
  return static_cast<TaskId>(tasks_.size() - 1);
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  if (from >= tasks_.size() || to >= tasks_.size() || from == to) {
    throw std::invalid_argument("TaskGraph::add_edge: bad endpoints");
  }
  tasks_[from].succ.push_back(to);
  tasks_[to].pred.push_back(from);
}

std::vector<TaskId> TaskGraph::topo_order() const {
  std::vector<std::uint32_t> indeg(tasks_.size(), 0);
  for (const auto& t : tasks_) {
    for (TaskId s : t.succ) ++indeg[s];
  }
  std::queue<TaskId> ready;
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    if (indeg[i] == 0) ready.push(i);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (TaskId s : tasks_[id].succ) {
      if (--indeg[s] == 0) ready.push(s);
    }
  }
  if (order.size() != tasks_.size()) {
    throw std::logic_error("TaskGraph: cycle detected");
  }
  return order;
}

double TaskGraph::total_work() const {
  double w = 0;
  for (const auto& t : tasks_) w += t.work_ops;
  return w;
}

double TaskGraph::critical_path() const {
  const auto order = topo_order();
  std::vector<double> finish(tasks_.size(), 0);
  double best = 0;
  for (TaskId id : order) {
    double start = 0;
    for (TaskId p : tasks_[id].pred) start = std::max(start, finish[p]);
    finish[id] = start + tasks_[id].work_ops;
    best = std::max(best, finish[id]);
  }
  return best;
}

double TaskGraph::total_edge_bytes() const {
  double b = 0;
  for (const auto& t : tasks_) {
    b += t.out_bytes * static_cast<double>(t.succ.size());
  }
  return b;
}

TaskGraph make_fork_join(std::uint32_t width, double work_per_task,
                         double bytes_per_edge) {
  TaskGraph g;
  const TaskId src = g.add(work_per_task, bytes_per_edge);
  const TaskId sink_placeholder = 0;
  (void)sink_placeholder;
  std::vector<TaskId> workers;
  workers.reserve(width);
  for (std::uint32_t i = 0; i < width; ++i) {
    const TaskId w = g.add(work_per_task, bytes_per_edge);
    g.add_edge(src, w);
    workers.push_back(w);
  }
  const TaskId sink = g.add(work_per_task, 0);
  for (TaskId w : workers) g.add_edge(w, sink);
  return g;
}

TaskGraph make_layered(std::uint32_t layers, std::uint32_t width,
                       std::uint32_t fan_in, double work_per_task,
                       double bytes_per_edge, std::uint64_t seed) {
  if (layers == 0 || width == 0) {
    throw std::invalid_argument("make_layered: empty graph");
  }
  Rng rng(seed);
  TaskGraph g;
  std::vector<TaskId> prev;
  for (std::uint32_t l = 0; l < layers; ++l) {
    std::vector<TaskId> cur;
    cur.reserve(width);
    for (std::uint32_t i = 0; i < width; ++i) {
      // Jitter work +/-30% so layers are not perfectly balanced.
      const double w = work_per_task * rng.uniform(0.7, 1.3);
      const TaskId id = g.add(w, bytes_per_edge);
      cur.push_back(id);
      if (!prev.empty()) {
        const std::uint32_t k =
            std::min<std::uint32_t>(fan_in, static_cast<std::uint32_t>(prev.size()));
        // Sample k distinct predecessors.
        std::vector<TaskId> pool = prev;
        for (std::uint32_t e = 0; e < k; ++e) {
          const std::size_t idx = rng.below(pool.size());
          g.add_edge(pool[idx], id);
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
        }
      }
    }
    prev = std::move(cur);
  }
  return g;
}

TaskGraph make_wavefront(std::uint32_t rows, std::uint32_t cols,
                         double work_per_task, double bytes_per_edge) {
  TaskGraph g;
  std::vector<TaskId> ids(static_cast<std::size_t>(rows) * cols);
  for (std::uint32_t i = 0; i < rows; ++i) {
    for (std::uint32_t j = 0; j < cols; ++j) {
      const TaskId id = g.add(work_per_task, bytes_per_edge);
      ids[static_cast<std::size_t>(i) * cols + j] = id;
      if (i > 0) g.add_edge(ids[static_cast<std::size_t>(i - 1) * cols + j], id);
      if (j > 0) g.add_edge(ids[static_cast<std::size_t>(i) * cols + j - 1], id);
    }
  }
  return g;
}

TaskGraph make_map_reduce(std::uint32_t mappers, std::uint32_t reducers,
                          double map_work, double reduce_work,
                          double shuffle_bytes) {
  TaskGraph g;
  std::vector<TaskId> maps;
  maps.reserve(mappers);
  for (std::uint32_t i = 0; i < mappers; ++i) {
    maps.push_back(g.add(map_work, shuffle_bytes));
  }
  std::vector<TaskId> reds;
  reds.reserve(reducers);
  for (std::uint32_t i = 0; i < reducers; ++i) {
    const TaskId r = g.add(reduce_work, shuffle_bytes);
    reds.push_back(r);
    for (TaskId m : maps) g.add_edge(m, r);
  }
  const TaskId merge = g.add(reduce_work, 0);
  for (TaskId r : reds) g.add_edge(r, merge);
  return g;
}

}  // namespace arch21::par
