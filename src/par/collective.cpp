#include "par/collective.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace arch21::par {

namespace {

double log2_ceil(unsigned p) {
  return std::ceil(std::log2(static_cast<double>(p)));
}

void check(unsigned p, double n) {
  if (p < 1 || n < 0) {
    throw std::invalid_argument("collective: need p >= 1, n >= 0");
  }
}

}  // namespace

double bcast_tree_s(const AlphaBeta& m, unsigned p, double n) {
  check(p, n);
  if (p == 1) return 0;
  return log2_ceil(p) * (m.alpha_s + n * m.beta_s_per_b);
}

double reduce_tree_s(const AlphaBeta& m, unsigned p, double n) {
  check(p, n);
  if (p == 1) return 0;
  return log2_ceil(p) *
         (m.alpha_s + n * m.beta_s_per_b + n * m.gamma_s_per_b);
}

double allreduce_tree_s(const AlphaBeta& m, unsigned p, double n) {
  return reduce_tree_s(m, p, n) + bcast_tree_s(m, p, n);
}

double allreduce_ring_s(const AlphaBeta& m, unsigned p, double n) {
  check(p, n);
  if (p == 1) return 0;
  const double pd = static_cast<double>(p);
  const double frac = (pd - 1.0) / pd;
  // Reduce-scatter + allgather, each (P-1) steps of n/P bytes.
  return 2.0 * (pd - 1.0) * m.alpha_s + 2.0 * n * m.beta_s_per_b * frac +
         n * m.gamma_s_per_b * frac;
}

double allgather_ring_s(const AlphaBeta& m, unsigned p, double n) {
  check(p, n);
  if (p == 1) return 0;
  const double pd = static_cast<double>(p);
  return (pd - 1.0) * (m.alpha_s + n / pd * m.beta_s_per_b);
}

double allreduce_crossover_bytes(const AlphaBeta& m, unsigned p,
                                 double max_bytes) {
  if (p <= 2) return 0;  // degenerate: shapes coincide or ring trivially ok
  auto ring_wins = [&](double n) {
    return allreduce_ring_s(m, p, n) < allreduce_tree_s(m, p, n);
  };
  if (ring_wins(1.0)) return 0;
  if (!ring_wins(max_bytes)) return std::numeric_limits<double>::infinity();
  double lo = 1.0;
  double hi = max_bytes;
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);
    if (ring_wins(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace arch21::par
