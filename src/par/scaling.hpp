#pragma once
// Strong-scaling study on a mesh many-core: the E7 driver.  A fixed-size
// data-parallel job (halo-exchange style: per-core compute shrinks with
// P, boundary communication shrinks only as 1/sqrt(P)) is scaled from 1
// to ~1000 cores on a 2-D mesh, charging compute through the energy
// catalogue and communication through the mesh model.  Output rows show
// speedup and the compute-vs-communication energy split -- making
// "communication energy will outgrow computation energy" a measured
// crossover.

#include <cstdint>
#include <vector>

#include "energy/catalogue.hpp"
#include "noc/mesh.hpp"

namespace arch21::par {

/// The scaled workload.
struct ScalingWorkload {
  double total_ops = 1e10;        ///< fixed total compute
  double domain_elems = 1 << 24;  ///< 2-D domain elements (bytes ~ 8/elem)
  double halo_bytes_per_elem = 8; ///< boundary exchange payload
  double ops_per_element = 50;
  std::uint32_t iterations = 10;  ///< halo exchanges per run
  double core_ghz = 1.0;          ///< per-core scalar rate
  double core_ops_per_cycle = 1.0;
  /// Shared-data traffic per operation to distributed LLC banks.  This is
  /// the term that grows with scale: the mean NoC distance to a bank
  /// rises as sqrt(P), so per-op communication energy overtakes per-op
  /// compute energy somewhere past a few hundred cores.
  double shared_bytes_per_op = 0.5;
};

/// One row of the scaling study.
struct ScalingRow {
  std::uint32_t cores = 1;
  double time_s = 0;
  double speedup = 1;
  double compute_energy_j = 0;
  double comm_energy_j = 0;
  double sync_energy_j = 0;
  double comm_fraction = 0;  ///< comm+sync energy share of total
  double energy_per_op_j = 0;
};

/// Run the study for square core counts (1, 4, 16, ..., up to max_cores).
std::vector<ScalingRow> strong_scaling(const ScalingWorkload& w,
                                       const energy::Catalogue& cat,
                                       std::uint32_t max_cores = 1024);

}  // namespace arch21::par
