#pragma once
// Synchronization cost models: tree barriers, contended locks, and atomic
// read-modify-write energy.  The paper calls for "more research on
// synchronization support [and] energy-efficient communication"; these
// first-order models let the scaling experiments charge synchronization
// honestly instead of assuming it free.

#include <cstdint>

namespace arch21::par {

/// Tree barrier: latency grows with log2(P) combining steps.
struct BarrierModel {
  double hop_latency_s = 40e-9;  ///< per tree level (cache-to-cache ping)
  double hop_energy_j = 5e-10;   ///< per message

  /// Latency for P participants.
  double latency(std::uint32_t p) const;
  /// Total message energy for one barrier episode.
  double energy(std::uint32_t p) const;
};

/// Test-and-set style lock under contention, modeled as an M/M/1 queue of
/// critical-section requests.
struct LockModel {
  double critical_section_s = 200e-9;
  double transfer_s = 60e-9;  ///< lock-line cache transfer on handoff

  /// Mean time to acquire+execute when `p` cores each retry at rate
  /// `arrival_hz` (returns infinity past saturation).
  double mean_sojourn(std::uint32_t p, double arrival_hz) const;

  /// Utilization of the critical section (rho); >= 1 means saturated.
  double rho(std::uint32_t p, double arrival_hz) const;
};

/// Atomic RMW energy relative to a plain load (line transfer + serialization).
struct AtomicModel {
  double base_op_j = 1e-12;
  double line_transfer_j = 6.4e-11;

  double energy_contended() const noexcept { return base_op_j + line_transfer_j; }
  double energy_uncontended() const noexcept { return base_op_j; }
};

}  // namespace arch21::par
