#pragma once
// Hamming(72,64) SECDED: the single-error-correcting, double-error-
// detecting code used on server DRAM for decades -- Table 1's "modest
// levels of transistor unreliability easily hidden (e.g., via ECC)".
// This is a real bit-level codec: encode() emits a 72-bit codeword,
// decode() corrects any single flipped bit (data or check) and flags any
// double flip.  The fault-injection campaign (reliab/fault_injection.hpp)
// uses it to measure where ECC stops being enough as raw error rates
// climb -- the "no longer easy to hide" half of the table row.

#include <cstdint>

namespace arch21::reliab {

/// A 72-bit SECDED codeword: 64 data bits + 8 check bits.
struct Codeword {
  std::uint64_t data = 0;
  std::uint8_t check = 0;
};

/// Decode outcome.
enum class EccStatus : std::uint8_t {
  Ok,            ///< no error detected
  Corrected,     ///< single-bit error corrected
  DoubleError,   ///< uncorrectable double-bit error detected
};

const char* to_string(EccStatus s);

/// Result of decoding a (possibly corrupted) codeword.
struct EccDecode {
  EccStatus status = EccStatus::Ok;
  std::uint64_t data = 0;  ///< corrected data (valid unless DoubleError)
};

/// Encode 64 data bits into a SECDED codeword.
Codeword ecc_encode(std::uint64_t data);

/// Decode and correct.  Any single-bit flip (in data or check bits) is
/// corrected; any double flip is reported as DoubleError.
EccDecode ecc_decode(const Codeword& cw);

/// Flip bit `pos` (0..71; 0..63 are data bits, 64..71 check bits).
Codeword flip_bit(Codeword cw, unsigned pos);

}  // namespace arch21::reliab
