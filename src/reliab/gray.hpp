#pragma once
// Gray-failure (fail-slow) degradation traces.
//
// FailureTrace models fail-STOP: an entity is up or down, and every layer
// above (breakers, retries, failover) is tuned for that binary signal.
// The dominant availability threat the datacenter agenda calls out is
// different: hardware that keeps accepting work while serving it *badly*
// -- a disk at 1/10th throughput, a NIC dropping a fraction of replies, a
// process that answers probes but never real requests.  A GrayTrace is
// the seeded, replayable source of exactly those episodes.
//
// Four degradation modes, one per observed failure family:
//   kSlow    -- service-rate multiplier (driven through Resource::set_speed)
//   kLossy   -- a fraction of replies silently dropped
//   kZombie  -- accepts work, never replies (loss fraction 1, but a
//               distinct mode so detectors and telemetry can name it)
//   kJittery -- intermittent latency spikes added to otherwise-normal
//               replies (GC pauses, NIC hiccups)
//
// A GrayTrace composes with a binary FailureTrace: the two are generated
// on independent streams and applied independently -- a leaf can be gray,
// crashed, or both (crash wins while it lasts).
//
// Determinism: entity e draws its whole lifetime (episode boundaries,
// mode choice, severity) from Rng(seed, e), the PR-1 sub-stream
// convention -- the trace is a pure function of the config.

#include <cstdint>
#include <vector>

#include "reliab/availability.hpp"
#include "util/rng.hpp"

namespace arch21::reliab {

/// Degradation families a gray episode can take.
enum class GrayMode : std::uint8_t { kSlow = 0, kLossy, kZombie, kJittery };

/// Stable lowercase name ("slow", "lossy", "zombie", "jittery").
const char* to_string(GrayMode m) noexcept;

/// Configuration for a per-entity gray-degradation trace.
struct GrayTraceConfig {
  unsigned entities = 100;
  /// Episode process: mtbf_hours = mean healthy gap between episodes,
  /// mttr_hours = mean episode duration (reusing the availability
  /// Component so the steady-state degraded fraction is availability()).
  Component episode{.mtbf_hours = 0.02, .mttr_hours = 0.002};
  /// Relative mode weights (need not sum to 1; negatives rejected, at
  /// least one must be > 0).
  double w_slow = 1.0;
  double w_lossy = 1.0;
  double w_zombie = 0.25;
  double w_jittery = 1.0;
  /// Severity ranges, drawn uniformly per episode at onset:
  /// slow    -- service-time multiplier (x factor slower)
  double slow_factor_min = 3.0;
  double slow_factor_max = 8.0;
  /// lossy   -- fraction of replies dropped
  double loss_fraction_min = 0.3;
  double loss_fraction_max = 0.8;
  /// jittery -- mean of the exponential latency spike, ms
  double spike_ms_min = 50.0;
  double spike_ms_max = 400.0;
  /// jittery -- per-request probability a spike is added
  double spike_prob = 0.5;
  double horizon_hours = 24;
  std::uint64_t seed = 2014;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One degradation transition.  An onset carries the episode's mode and
/// severity; the matching clear repeats the mode with severity 0.
struct GrayEvent {
  double t_hours = 0;
  unsigned entity = 0;
  GrayMode mode = GrayMode::kSlow;
  bool onset = false;   ///< true = degradation begins, false = clears
  double severity = 0;  ///< slow factor / loss fraction / spike mean ms
};

/// A complete seeded gray trace over [0, horizon).
struct GrayTrace {
  std::vector<GrayEvent> events;  ///< sorted by (t, entity, clear-first)
  std::uint64_t episodes = 0;
  std::uint64_t episodes_by_mode[4] = {};

  /// Mean fraction of entity-time spent degraded (any mode).
  double measured_degraded_fraction(const GrayTraceConfig& cfg) const;
};

/// Generate the trace for `cfg` (validates first).
GrayTrace generate_gray_trace(const GrayTraceConfig& cfg);

}  // namespace arch21::reliab
