#include "reliab/ecc.hpp"

#include <array>
#include <bit>

namespace arch21::reliab {

namespace {

// Extended Hamming construction over codeword positions 1..71:
// positions that are powers of two hold the 7 Hamming check bits, every
// other position holds a data bit (64 of them: 71 - 7).  An overall
// parity bit (stored as check bit 7) extends SEC to SECDED.

constexpr bool is_pow2(unsigned v) { return v && (v & (v - 1)) == 0; }

/// Data-bit index (0..63) -> Hamming position (1..71).
constexpr std::array<std::uint8_t, 64> make_positions() {
  std::array<std::uint8_t, 64> map{};
  unsigned pos = 1;
  for (unsigned i = 0; i < 64; ++i) {
    while (is_pow2(pos)) ++pos;
    map[i] = static_cast<std::uint8_t>(pos);
    ++pos;
  }
  return map;
}

constexpr auto kDataPos = make_positions();

/// Hamming position (1..71) -> data-bit index, or -1 for check positions.
constexpr std::array<std::int8_t, 72> make_inverse() {
  std::array<std::int8_t, 72> inv{};
  for (auto& v : inv) v = -1;
  for (unsigned i = 0; i < 64; ++i) inv[kDataPos[i]] = static_cast<std::int8_t>(i);
  return inv;
}

constexpr auto kPosToData = make_inverse();

/// Compute the 7 Hamming check bits for the data-bit layout.
std::uint8_t hamming_checks(std::uint64_t data) {
  unsigned syndrome = 0;
  for (unsigned i = 0; i < 64; ++i) {
    if ((data >> i) & 1) syndrome ^= kDataPos[i];
  }
  // syndrome bit k corresponds to parity position 2^k; storing the
  // syndrome itself as the check bits makes the recomputed syndrome of a
  // clean codeword zero.
  return static_cast<std::uint8_t>(syndrome & 0x7f);
}

bool overall_parity(std::uint64_t data, std::uint8_t check7) {
  const int ones =
      std::popcount(data) + std::popcount(static_cast<unsigned>(check7));
  return (ones & 1) != 0;
}

}  // namespace

const char* to_string(EccStatus s) {
  switch (s) {
    case EccStatus::Ok: return "ok";
    case EccStatus::Corrected: return "corrected";
    case EccStatus::DoubleError: return "double-error";
  }
  return "?";
}

Codeword ecc_encode(std::uint64_t data) {
  Codeword cw;
  cw.data = data;
  const std::uint8_t c7 = hamming_checks(data);
  const bool par = overall_parity(data, c7);
  cw.check = static_cast<std::uint8_t>(c7 | (par ? 0x80 : 0));
  return cw;
}

EccDecode ecc_decode(const Codeword& cw) {
  const std::uint8_t stored_checks = cw.check & 0x7f;
  const bool stored_parity = (cw.check & 0x80) != 0;
  const std::uint8_t recomputed = hamming_checks(cw.data);
  const unsigned syndrome = recomputed ^ stored_checks;
  const bool parity_now = overall_parity(cw.data, stored_checks);
  const bool parity_error = parity_now != stored_parity;

  EccDecode out;
  out.data = cw.data;

  if (syndrome == 0 && !parity_error) {
    out.status = EccStatus::Ok;
    return out;
  }
  if (syndrome == 0 && parity_error) {
    // The overall parity bit itself flipped; data intact.
    out.status = EccStatus::Corrected;
    return out;
  }
  if (parity_error) {
    // Odd number of flips with nonzero syndrome: single-bit error at
    // `syndrome` (a data position or a check position).
    if (syndrome >= 72) {
      out.status = EccStatus::DoubleError;  // impossible position
      return out;
    }
    const std::int8_t data_idx = kPosToData[syndrome];
    if (data_idx >= 0) {
      out.data = cw.data ^ (std::uint64_t{1} << data_idx);
    }
    // A check-position syndrome means the flip hit a check bit: data ok.
    out.status = EccStatus::Corrected;
    return out;
  }
  // Nonzero syndrome with clean parity: even number of flips.
  out.status = EccStatus::DoubleError;
  return out;
}

Codeword flip_bit(Codeword cw, unsigned pos) {
  if (pos < 64) {
    cw.data ^= std::uint64_t{1} << pos;
  } else if (pos < 72) {
    cw.check ^= static_cast<std::uint8_t>(1u << (pos - 64));
  }
  return cw;
}

}  // namespace arch21::reliab
