#include "reliab/fit.hpp"

#include <cmath>
#include <limits>

namespace arch21::reliab {

double fit_to_flips_per_second(double fit_per_mbit, double bytes) {
  const double mbits = bytes * 8.0 / 1e6;
  const double failures_per_hour = fit_per_mbit * mbits / 1e9;
  return failures_per_hour / 3600.0;
}

double ser_voltage_multiplier(double v, double vnom, double sensitivity) {
  return std::exp((vnom - v) / sensitivity);
}

double double_error_probability(double flips_per_bit_s, double scrub_s,
                                unsigned word_bits) {
  // Poisson flips per word over the interval; P(>=2) = 1 - e^-l (1 + l).
  const double lambda =
      flips_per_bit_s * static_cast<double>(word_bits) * scrub_s;
  if (lambda <= 0) return 0.0;
  if (lambda < 1e-8) return 0.5 * lambda * lambda;  // stable small-l form
  return 1.0 - std::exp(-lambda) * (1.0 + lambda);
}

double uncorrectable_per_hour(double fit_per_mbit, double bytes,
                              double scrub_s) {
  const double flips_per_bit_s =
      fit_to_flips_per_second(fit_per_mbit, bytes) / (bytes * 8.0);
  const double words = bytes / 8.0;
  const double p2 = double_error_probability(flips_per_bit_s, scrub_s);
  // Each word gets an independent double-error chance every scrub period.
  const double intervals_per_hour = 3600.0 / scrub_s;
  return words * p2 * intervals_per_hour;
}

double mtbe_hours(double fit_per_mbit, double bytes, double scrub_s) {
  const double rate = uncorrectable_per_hour(fit_per_mbit, bytes, scrub_s);
  return rate > 0 ? 1.0 / rate : std::numeric_limits<double>::infinity();
}

}  // namespace arch21::reliab
