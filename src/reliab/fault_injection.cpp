#include "reliab/fault_injection.hpp"

#include <stdexcept>
#include <string>

namespace arch21::reliab {

void CampaignConfig::validate() const {
  auto bad = [](const char* field) {
    throw std::invalid_argument(std::string("CampaignConfig::") + field);
  };
  if (words == 0) bad("words must be > 0");
  if (!(flip_prob_per_bit >= 0.0) || flip_prob_per_bit > 1.0) {
    bad("flip_prob_per_bit must be in [0, 1]");
  }
}

namespace {

/// Codewords injected per reduce chunk (fixed so per-chunk RNG streams
/// are independent of the worker count).
constexpr std::size_t kWordGrain = 2048;

CampaignResult campaign_chunk(const CampaignConfig& cfg, std::uint64_t begin,
                              std::uint64_t end, std::uint64_t chunk) {
  Rng rng(cfg.seed, chunk);
  CampaignResult res;

  for (std::uint64_t w = begin; w < end; ++w) {
    const std::uint64_t data = rng.next();
    Codeword cw = ecc_encode(data);

    // Flip each of the 72 bits independently.  For the tiny per-bit
    // probabilities used in practice, draw the flip count first to avoid
    // 72 uniform draws per word.
    const double lambda = cfg.flip_prob_per_bit * 72.0;
    unsigned flips = static_cast<unsigned>(rng.poisson(lambda));
    if (flips > 72) flips = 72;
    for (unsigned f = 0; f < flips; ++f) {
      cw = flip_bit(cw, static_cast<unsigned>(rng.below(72)));
    }

    const EccDecode d = ecc_decode(cw);
    switch (d.status) {
      case EccStatus::Ok:
        if (d.data == data) {
          ++res.clean;
        } else {
          ++res.silent;
        }
        break;
      case EccStatus::Corrected:
        if (d.data == data) {
          ++res.corrected;
        } else {
          ++res.silent;
        }
        break;
      case EccStatus::DoubleError:
        ++res.detected;
        break;
    }
  }
  return res;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& cfg, ThreadPool* pool) {
  cfg.validate();
  ThreadPool& tp = pool ? *pool : ThreadPool::global();
  CampaignResult res = tp.parallel_reduce<CampaignResult>(
      cfg.words, CampaignResult{}, kWordGrain,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        return campaign_chunk(cfg, begin, end, chunk);
      },
      [](CampaignResult acc, const CampaignResult& c) {
        acc.clean += c.clean;
        acc.corrected += c.corrected;
        acc.detected += c.detected;
        acc.silent += c.silent;
        return acc;
      });
  res.words = cfg.words;
  return res;
}

}  // namespace arch21::reliab
