#include "reliab/fault_injection.hpp"

namespace arch21::reliab {

CampaignResult run_campaign(const CampaignConfig& cfg) {
  Rng rng(cfg.seed);
  CampaignResult res;
  res.words = cfg.words;

  for (std::uint64_t w = 0; w < cfg.words; ++w) {
    const std::uint64_t data = rng.next();
    Codeword cw = ecc_encode(data);

    // Flip each of the 72 bits independently.  For the tiny per-bit
    // probabilities used in practice, draw the flip count first to avoid
    // 72 uniform draws per word.
    const double lambda = cfg.flip_prob_per_bit * 72.0;
    unsigned flips = static_cast<unsigned>(rng.poisson(lambda));
    if (flips > 72) flips = 72;
    for (unsigned f = 0; f < flips; ++f) {
      cw = flip_bit(cw, static_cast<unsigned>(rng.below(72)));
    }

    const EccDecode d = ecc_decode(cw);
    switch (d.status) {
      case EccStatus::Ok:
        if (d.data == data) {
          ++res.clean;
        } else {
          ++res.silent;
        }
        break;
      case EccStatus::Corrected:
        if (d.data == data) {
          ++res.corrected;
        } else {
          ++res.silent;
        }
        break;
      case EccStatus::DoubleError:
        ++res.detected;
        break;
    }
  }
  return res;
}

}  // namespace arch21::reliab
