#include "reliab/availability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arch21::reliab {

namespace {

double binom(unsigned n, unsigned k) {
  double r = 1;
  for (unsigned i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return r;
}

}  // namespace

double series_availability(const Component& c, unsigned n) {
  return std::pow(c.availability(), n);
}

double k_of_n_availability(const Component& c, unsigned k, unsigned n) {
  if (k > n) {
    throw std::invalid_argument(
        "k_of_n_availability: k must be <= n (more required than present)");
  }
  if (k == 0) return 1.0;  // nothing required: trivially available
  const double a = c.availability();
  double total = 0;
  for (unsigned i = k; i <= n; ++i) {
    total += binom(n, i) * std::pow(a, i) * std::pow(1 - a, n - i);
  }
  return std::min(total, 1.0);
}

double downtime_minutes_per_year(double a) {
  return (1.0 - a) * 365.25 * 24.0 * 60.0;
}

unsigned nines(double a) {
  if (a >= 1.0) return 12;
  if (a <= 0.0) return 0;
  // Tolerate floating-point fuzz at exact-nines boundaries
  // (1 - 0.999 == 0.0010000000000000009 must still count as three 9s).
  const double n = -std::log10(1.0 - a) + 1e-9;
  return static_cast<unsigned>(std::clamp(std::floor(n), 0.0, 12.0));
}

unsigned replicas_for_availability(const Component& c, double target,
                                   unsigned max_n) {
  for (unsigned n = 1; n <= max_n; ++n) {
    if (k_of_n_availability(c, 1, n) >= target) return n;
  }
  return 0;
}

}  // namespace arch21::reliab
