#include "reliab/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arch21::reliab {

double daly_optimal_interval(const CheckpointParams& p) {
  if (p.delta_s <= 0 || p.mtbf_s <= 0) {
    throw std::invalid_argument("daly_optimal_interval: bad params");
  }
  const double tau = std::sqrt(2.0 * p.delta_s * p.mtbf_s) - p.delta_s;
  return std::max(tau, p.delta_s);  // never checkpoint faster than delta
}

double expected_runtime(const CheckpointParams& p, double tau) {
  if (tau <= 0) throw std::invalid_argument("expected_runtime: tau <= 0");
  // Daly's model: each segment of tau useful seconds costs (tau + delta)
  // exposed time; with exponential failures at rate 1/M, the expected
  // wall time per segment is
  //   M * exp(R/M) * (exp((tau+delta)/M) - 1)
  // and there are work/tau segments.
  const double M = p.mtbf_s;
  const double segs = p.work_s / tau;
  const double per_seg =
      M * std::exp(p.restart_s / M) * (std::exp((tau + p.delta_s) / M) - 1.0);
  return segs * per_seg;
}

double simulate_runtime(const CheckpointParams& p, double tau, Rng& rng) {
  double wall = 0;
  double done = 0;            // completed (checkpointed) useful work
  double next_failure = rng.exponential(p.mtbf_s);

  while (done < p.work_s) {
    const double seg_useful = std::min(tau, p.work_s - done);
    const double seg_total = seg_useful + p.delta_s;
    if (wall + seg_total <= next_failure) {
      // Segment completes and checkpoints.
      wall += seg_total;
      done += seg_useful;
    } else {
      // Failure mid-segment: lose uncheckpointed work, pay restart.
      wall = next_failure + p.restart_s;
      next_failure = wall + rng.exponential(p.mtbf_s);
    }
  }
  return wall;
}

double mean_simulated_runtime(const CheckpointParams& p, double tau,
                              std::uint64_t trials, std::uint64_t seed) {
  Rng rng(seed);
  double acc = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    Rng child = rng.split();
    acc += simulate_runtime(p, tau, child);
  }
  return acc / static_cast<double>(trials);
}

}  // namespace arch21::reliab
