#pragma once
// Checkpoint/restart optimization (Daly's model) and a discrete-event
// validation harness.  Long-running computations on failure-prone
// hardware checkpoint every tau seconds at cost delta; on a failure they
// lose the work since the last checkpoint and pay a restart cost R.
// Daly's first-order optimum is tau* = sqrt(2 delta M) - delta for MTBF
// M >> delta.  The simulator verifies the analytic expectation -- the
// "Always Online" attribute of Table A.2 costed out.

#include <cstdint>

#include "util/rng.hpp"

namespace arch21::reliab {

/// Checkpointing parameters.
struct CheckpointParams {
  double work_s = 1e6;     ///< total useful work to complete, seconds
  double delta_s = 60;     ///< checkpoint write cost
  double restart_s = 120;  ///< restart/recovery cost after a failure
  double mtbf_s = 86400;   ///< exponential failure interarrival mean
};

/// Daly's first-order optimal checkpoint interval.
double daly_optimal_interval(const CheckpointParams& p);

/// Expected total wall-clock time to finish `work_s` of useful work when
/// checkpointing every `tau` seconds (Daly's expected-runtime model).
double expected_runtime(const CheckpointParams& p, double tau);

/// Simulated wall-clock time for one run (failures drawn from `rng`).
double simulate_runtime(const CheckpointParams& p, double tau, Rng& rng);

/// Mean simulated runtime over `trials` independent runs.
double mean_simulated_runtime(const CheckpointParams& p, double tau,
                              std::uint64_t trials, std::uint64_t seed);

}  // namespace arch21::reliab
