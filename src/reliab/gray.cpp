#include "reliab/gray.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <tuple>

namespace arch21::reliab {

const char* to_string(GrayMode m) noexcept {
  switch (m) {
    case GrayMode::kSlow: return "slow";
    case GrayMode::kLossy: return "lossy";
    case GrayMode::kZombie: return "zombie";
    case GrayMode::kJittery: return "jittery";
  }
  return "?";
}

void GrayTraceConfig::validate() const {
  auto bad = [](const char* field) {
    throw std::invalid_argument(std::string("GrayTraceConfig::") + field);
  };
  if (entities == 0) bad("entities must be > 0");
  if (horizon_hours <= 0) bad("horizon_hours must be > 0");
  if (episode.mtbf_hours <= 0) bad("episode.mtbf_hours must be > 0");
  if (episode.mttr_hours < 0) bad("episode.mttr_hours must be >= 0");
  auto finite_nonneg = [&](double v, const char* field) {
    if (!(v >= 0) || !std::isfinite(v)) bad(field);
  };
  finite_nonneg(w_slow, "w_slow must be finite and >= 0");
  finite_nonneg(w_lossy, "w_lossy must be finite and >= 0");
  finite_nonneg(w_zombie, "w_zombie must be finite and >= 0");
  finite_nonneg(w_jittery, "w_jittery must be finite and >= 0");
  if (w_slow + w_lossy + w_zombie + w_jittery <= 0) {
    bad("mode weights must sum to > 0");
  }
  if (!(slow_factor_min >= 1) || !std::isfinite(slow_factor_min)) {
    bad("slow_factor_min must be finite and >= 1");
  }
  if (!(slow_factor_max >= slow_factor_min) ||
      !std::isfinite(slow_factor_max)) {
    bad("slow_factor_max must be finite and >= slow_factor_min");
  }
  if (!(loss_fraction_min > 0) || loss_fraction_min > 1) {
    bad("loss_fraction_min must be in (0, 1]");
  }
  if (!(loss_fraction_max >= loss_fraction_min) || loss_fraction_max > 1) {
    bad("loss_fraction_max must be in [loss_fraction_min, 1]");
  }
  if (!(spike_ms_min > 0) || !std::isfinite(spike_ms_min)) {
    bad("spike_ms_min must be finite and > 0");
  }
  if (!(spike_ms_max >= spike_ms_min) || !std::isfinite(spike_ms_max)) {
    bad("spike_ms_max must be finite and >= spike_ms_min");
  }
  if (!(spike_prob > 0) || spike_prob > 1) bad("spike_prob must be in (0, 1]");
}

namespace {

// Pick a mode by cumulative weight from one uniform draw, then its
// severity from the matching range.  Severity for zombie is fixed at 1
// (total reply loss) -- the mode IS the severity.
GrayMode draw_mode(Rng& rng, const GrayTraceConfig& cfg) {
  const double total = cfg.w_slow + cfg.w_lossy + cfg.w_zombie + cfg.w_jittery;
  const double u = rng.uniform() * total;
  if (u < cfg.w_slow) return GrayMode::kSlow;
  if (u < cfg.w_slow + cfg.w_lossy) return GrayMode::kLossy;
  if (u < cfg.w_slow + cfg.w_lossy + cfg.w_zombie) return GrayMode::kZombie;
  return GrayMode::kJittery;
}

double draw_severity(Rng& rng, const GrayTraceConfig& cfg, GrayMode m) {
  switch (m) {
    case GrayMode::kSlow:
      return rng.uniform(cfg.slow_factor_min, cfg.slow_factor_max);
    case GrayMode::kLossy:
      return rng.uniform(cfg.loss_fraction_min, cfg.loss_fraction_max);
    case GrayMode::kZombie:
      return 1.0;
    case GrayMode::kJittery:
      return rng.uniform(cfg.spike_ms_min, cfg.spike_ms_max);
  }
  return 0;
}

}  // namespace

GrayTrace generate_gray_trace(const GrayTraceConfig& cfg) {
  cfg.validate();
  GrayTrace trace;
  for (unsigned e = 0; e < cfg.entities; ++e) {
    Rng rng(cfg.seed, e);
    double t = 0;
    for (;;) {
      t += rng.exponential(cfg.episode.mtbf_hours);
      if (t >= cfg.horizon_hours) break;
      const GrayMode mode = draw_mode(rng, cfg);
      const double severity = draw_severity(rng, cfg, mode);
      trace.events.push_back({t, e, mode, true, severity});
      ++trace.episodes;
      ++trace.episodes_by_mode[static_cast<unsigned>(mode)];
      t += rng.exponential(cfg.episode.mttr_hours);
      if (t >= cfg.horizon_hours) {
        // Episode runs past the horizon: it never clears in-trace.
        break;
      }
      trace.events.push_back({t, e, mode, false, 0.0});
    }
  }
  // Deterministic total order: time, then entity, then clears before
  // onsets (an entity whose episode ends as another begins is healthy
  // for an instant, not doubly degraded).
  std::sort(trace.events.begin(), trace.events.end(),
            [](const GrayEvent& a, const GrayEvent& b) {
              return std::tuple(a.t_hours, a.entity, a.onset) <
                     std::tuple(b.t_hours, b.entity, b.onset);
            });
  return trace;
}

double GrayTrace::measured_degraded_fraction(
    const GrayTraceConfig& cfg) const {
  cfg.validate();
  std::vector<char> degraded(cfg.entities, 0);
  unsigned degraded_count = 0;
  double degraded_entity_hours = 0;
  double last_t = 0;
  for (const GrayEvent& ev : events) {
    degraded_entity_hours +=
        static_cast<double>(degraded_count) * (ev.t_hours - last_t);
    last_t = ev.t_hours;
    if (ev.onset && !degraded[ev.entity]) {
      degraded[ev.entity] = 1;
      ++degraded_count;
    } else if (!ev.onset && degraded[ev.entity]) {
      degraded[ev.entity] = 0;
      --degraded_count;
    }
  }
  degraded_entity_hours +=
      static_cast<double>(degraded_count) * (cfg.horizon_hours - last_t);
  return degraded_entity_hours /
         (static_cast<double>(cfg.entities) * cfg.horizon_hours);
}

}  // namespace arch21::reliab
