#pragma once
// Availability algebra: MTBF/MTTR, series/parallel composition, and the
// cost of "nines".  Table A.2: "current mainframes and medical devices
// strive for five 9's ... achieving this goal can cost millions of
// dollars.  Tomorrow's solutions demand this same availability at many
// levels, some where the cost is only a few dollars."  Experiment E13
// tabulates how much redundancy each nine requires.

#include <cstdint>

namespace arch21::reliab {

/// A repairable component.
struct Component {
  double mtbf_hours = 10'000;
  double mttr_hours = 4;

  /// Steady-state availability MTBF / (MTBF + MTTR).
  double availability() const noexcept {
    return mtbf_hours / (mtbf_hours + mttr_hours);
  }
};

/// Availability of `n` components in series (all must be up).
double series_availability(const Component& c, unsigned n);

/// Availability of `n` identical components in parallel where `k` must
/// be up (k-of-n redundancy, independent failures).  k == 0 is trivially
/// available (probability 1); k > n throws std::invalid_argument.
double k_of_n_availability(const Component& c, unsigned k, unsigned n);

/// Expected downtime per year (minutes) at availability `a`.
double downtime_minutes_per_year(double a);

/// Number of nines: floor(-log10(1 - a)), clamped to [0, 12].
unsigned nines(double a);

/// Smallest replica count n (with 1-of-n redundancy) achieving a target
/// availability; returns 0 if > `max_n` replicas would be needed.
unsigned replicas_for_availability(const Component& c, double target,
                                   unsigned max_n = 16);

}  // namespace arch21::reliab
