#pragma once
// Monte-Carlo fault-injection campaign against the SECDED codec.  Words
// are encoded, hit with Poisson-distributed bit flips at a configurable
// raw bit-error rate per scrub interval, then decoded; the campaign
// classifies outcomes (clean / corrected / detected-uncorrectable /
// silent corruption) and reports rates.  This turns the Table 1
// reliability row into a measured curve: as raw BER rises, the silent +
// uncorrectable share grows and plain SECDED stops being "easy hiding".

#include <cstdint>

#include "reliab/ecc.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace arch21::reliab {

/// Campaign configuration.
struct CampaignConfig {
  std::uint64_t words = 100'000;     ///< codewords per trial
  double flip_prob_per_bit = 1e-6;   ///< per-bit flip probability per interval
  std::uint64_t seed = 1234;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Campaign outcome counts.
struct CampaignResult {
  std::uint64_t words = 0;
  std::uint64_t clean = 0;
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;    ///< DoubleError reported
  std::uint64_t silent = 0;      ///< decoder said Ok/Corrected but data wrong

  double silent_rate() const noexcept {
    return words ? static_cast<double>(silent) / static_cast<double>(words) : 0;
  }
  double uncorrectable_rate() const noexcept {
    return words ? static_cast<double>(detected + silent) /
                       static_cast<double>(words)
                 : 0;
  }
};

/// Run one campaign.  Codeword chunks run on `pool` (ThreadPool::global()
/// when null); chunk i draws from Rng(cfg.seed, i), and chunk counts fold
/// in chunk order, so results are identical at any pool size.
CampaignResult run_campaign(const CampaignConfig& cfg,
                            ThreadPool* pool = nullptr);

}  // namespace arch21::reliab
