#include "reliab/failure_trace.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>

namespace arch21::reliab {

namespace {

// Domain entity e draws from stream (kDomainStream | e) so leaf and
// domain streams can never collide.
constexpr std::uint64_t kDomainStream = std::uint64_t{1} << 32;

void append_lifetime(std::vector<FailureEvent>& out, Rng rng,
                     const Component& c, double horizon_hours,
                     unsigned entity, bool is_domain,
                     std::uint64_t& failures) {
  double t = 0;
  for (;;) {
    t += rng.exponential(c.mtbf_hours);
    if (t >= horizon_hours) return;
    out.push_back({t, entity, is_domain, false});
    ++failures;
    t += rng.exponential(c.mttr_hours);
    if (t >= horizon_hours) return;
    out.push_back({t, entity, is_domain, true});
  }
}

}  // namespace

void FailureTraceConfig::validate() const {
  auto bad = [](const char* field) {
    throw std::invalid_argument(std::string("FailureTraceConfig::") + field);
  };
  if (leaves == 0) bad("leaves must be > 0");
  if (horizon_hours <= 0) bad("horizon_hours must be > 0");
  if (leaf.mtbf_hours <= 0) bad("leaf.mtbf_hours must be > 0");
  if (leaf.mttr_hours < 0) bad("leaf.mttr_hours must be >= 0");
  if (leaves_per_domain > 0) {
    if (domain.mtbf_hours <= 0) bad("domain.mtbf_hours must be > 0");
    if (domain.mttr_hours < 0) bad("domain.mttr_hours must be >= 0");
  }
}

FailureTrace generate_failure_trace(const FailureTraceConfig& cfg) {
  cfg.validate();
  FailureTrace trace;
  for (unsigned l = 0; l < cfg.leaves; ++l) {
    append_lifetime(trace.events, Rng(cfg.seed, l), cfg.leaf,
                    cfg.horizon_hours, l, false, trace.leaf_failures);
  }
  for (unsigned d = 0; d < cfg.domains(); ++d) {
    append_lifetime(trace.events, Rng(cfg.seed, kDomainStream | d),
                    cfg.domain, cfg.horizon_hours, d, true,
                    trace.domain_failures);
  }
  // Deterministic total order: time, then domain events before leaf
  // events (a rack dying takes its leaves with it at that instant), then
  // entity, then recovery before failure.
  std::sort(trace.events.begin(), trace.events.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              return std::tuple(a.t_hours, !a.is_domain, a.entity, !a.up) <
                     std::tuple(b.t_hours, !b.is_domain, b.entity, !b.up);
            });
  return trace;
}

double FailureTrace::measured_leaf_availability(
    const FailureTraceConfig& cfg) const {
  cfg.validate();
  std::vector<char> leaf_down(cfg.leaves, 0);
  std::vector<char> domain_down(std::max(cfg.domains(), 1u), 0);
  auto domain_of = [&](unsigned leaf) {
    return cfg.leaves_per_domain ? leaf / cfg.leaves_per_domain : 0u;
  };
  auto effectively_up = [&](unsigned leaf) {
    return !leaf_down[leaf] &&
           (cfg.leaves_per_domain == 0 || !domain_down[domain_of(leaf)]);
  };
  unsigned up_count = cfg.leaves;
  double up_leaf_hours = 0;
  double last_t = 0;
  for (const FailureEvent& ev : events) {
    up_leaf_hours += static_cast<double>(up_count) * (ev.t_hours - last_t);
    last_t = ev.t_hours;
    if (ev.is_domain) {
      domain_down[ev.entity] = ev.up ? 0 : 1;
      up_count = 0;
      for (unsigned l = 0; l < cfg.leaves; ++l) {
        up_count += effectively_up(l) ? 1 : 0;
      }
    } else {
      const bool was_up = effectively_up(ev.entity);
      leaf_down[ev.entity] = ev.up ? 0 : 1;
      const bool is_up = effectively_up(ev.entity);
      if (was_up && !is_up) --up_count;
      if (!was_up && is_up) ++up_count;
    }
  }
  up_leaf_hours += static_cast<double>(up_count) * (cfg.horizon_hours - last_t);
  return up_leaf_hours / (static_cast<double>(cfg.leaves) * cfg.horizon_hours);
}

}  // namespace arch21::reliab
