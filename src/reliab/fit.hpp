#pragma once
// Soft-error rate modeling: FIT arithmetic, supply-voltage sensitivity,
// and the interaction between scrubbing interval and SECDED protection.
//
// FIT = failures per 10^9 device-hours.  Memory soft-error rates are
// quoted in FIT/Mbit; the word-level double-error probability between
// scrubs is what determines whether SECDED suffices -- Table 1's
// "transistor reliability worsening, no longer easy to hide" made
// quantitative.

#include <cstdint>

namespace arch21::reliab {

/// Convert FIT/Mbit to expected bit flips per second in `bytes` of memory.
double fit_to_flips_per_second(double fit_per_mbit, double bytes);

/// Critical-charge voltage sensitivity: soft-error rate grows
/// exponentially as supply drops (rate multiplier relative to vnom).
/// `sensitivity` is the e-folding in volts (typical 0.1-0.2 V).
double ser_voltage_multiplier(double v, double vnom, double sensitivity = 0.15);

/// Probability that one 72-bit SECDED word accumulates >= 2 flipped bits
/// within a scrub interval (Poisson arrivals at `flips_per_bit_s`).
double double_error_probability(double flips_per_bit_s, double scrub_s,
                                unsigned word_bits = 72);

/// System-level uncorrectable error rate (events/hour) for a memory of
/// `bytes` protected by SECDED with periodic scrubbing.
double uncorrectable_per_hour(double fit_per_mbit, double bytes,
                              double scrub_s);

/// Mean time between uncorrectable errors, in hours (inf if rate ~ 0).
double mtbe_hours(double fit_per_mbit, double bytes, double scrub_s);

}  // namespace arch21::reliab
