#pragma once
// Pre-generated failure traces for simulation-driven fault injection.
// This is the bridge the paper's cross-cutting agenda asks for: the
// availability *algebra* (reliab/availability.hpp) predicts steady-state
// behaviour from MTBF/MTTR, and a FailureTrace turns the same Component
// parameters into a concrete, seeded sequence of up/down transitions that
// a discrete-event simulation replays -- so predicted and measured
// availability can be compared in one experiment.
//
// Failures are *correlated* through failure domains: leaves are grouped
// into domains (racks / PSUs), and a domain failure takes down the whole
// group at once.  A leaf is effectively up only while both its own state
// and its domain's state are up -- availability in series, exactly
// series_availability() over {leaf, domain}.
//
// Determinism: entity e draws its whole lifetime from Rng(seed, stream_e)
// (the PR-1 sub-stream convention), so the trace is a pure function of
// the config -- independent of thread count, generation order, or any
// consumer behaviour.

#include <cstdint>
#include <vector>

#include "reliab/availability.hpp"
#include "util/rng.hpp"

namespace arch21::reliab {

/// Configuration for a leaf-cluster failure trace.
struct FailureTraceConfig {
  unsigned leaves = 100;
  /// Leaves per failure domain (rack/PSU group); 0 disables domain
  /// failures.  The last domain may be smaller if it does not divide.
  unsigned leaves_per_domain = 0;
  Component leaf{.mtbf_hours = 10'000, .mttr_hours = 4};
  Component domain{.mtbf_hours = 50'000, .mttr_hours = 1};
  double horizon_hours = 24;
  std::uint64_t seed = 2014;

  unsigned domains() const noexcept {
    return leaves_per_domain == 0
               ? 0
               : (leaves + leaves_per_domain - 1) / leaves_per_domain;
  }
  /// Predicted steady-state availability of one leaf (its own failures in
  /// series with its domain's, per the availability algebra).
  double predicted_leaf_availability() const noexcept {
    return leaf.availability() *
           (leaves_per_domain > 0 ? domain.availability() : 1.0);
  }
  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One transition in a failure trace.
struct FailureEvent {
  double t_hours = 0;     ///< transition time
  unsigned entity = 0;    ///< leaf index, or domain index if is_domain
  bool is_domain = false; ///< domain-level (correlated) event?
  bool up = false;        ///< true = recovery, false = failure
};

/// A complete seeded trace over [0, horizon).
struct FailureTrace {
  std::vector<FailureEvent> events;  ///< sorted by (t, kind, entity)
  std::uint64_t leaf_failures = 0;
  std::uint64_t domain_failures = 0;

  /// Mean fraction of leaf-time effectively up over the horizon
  /// (own state AND domain state), by sweeping the event list.
  double measured_leaf_availability(const FailureTraceConfig& cfg) const;
};

/// Generate the trace for `cfg` (validates first).
FailureTrace generate_failure_trace(const FailureTraceConfig& cfg);

}  // namespace arch21::reliab
