// Overload drill (the server-side half of "The Tail at Scale", plus the
// metastable-failure literature): run a healthy 20-leaf cluster into a
// transient fault burst -- 12 leaves down for 4 seconds -- and compare
// the aftermath with and without server-side protection.  Unprotected
// (unbounded FIFO queues, naive unbudgeted retries) the cluster never
// recovers: the trigger is gone but retry amplification keeps effective
// utilization above 1 and every served request is already stale.  The
// protection ladder -- bounded queues with deadline drop, admission
// control + retry budget, per-replica circuit breakers -- sheds work
// early and visibly, and goodput snaps back within seconds.
//
// Every number is deterministic: workload, burst, and breaker jitter are
// seeded, trials run on the work-stealing pool, and the aggregate is
// bit-identical for any ARCH21_THREADS.

#include <iostream>

#include "cloud/cluster.hpp"
#include "cloud/resilience.hpp"
#include "core/report.hpp"

int main() {
  using namespace arch21;

  cloud::ClusterConfig cfg;
  cfg.leaves = 20;
  cfg.query_rate_hz = 160;
  cfg.leaf_service_ms = 3;
  cfg.background_rate_hz = 30;
  cfg.background_ms = 2;
  cfg.duration_s = 30;
  cfg.seed = 7;
  cfg.goodput_window_s = 1;
  cfg.faults.burst_leaves = 12;
  cfg.faults.burst_start_s = 10;
  cfg.faults.burst_duration_s = 4;

  cloud::OverloadPolicies knobs;
  knobs.timeout_ms = 25;
  knobs.sojourn_target_ms = 25;
  const auto ladder = cloud::overload_scenarios(cfg, /*trials=*/2, knobs);
  std::cout << core::render_overload_report(ladder);

  const auto h_un = cloud::goodput_hysteresis(ladder.front().result,
                                              ladder.front().config);
  const auto h_pr = cloud::goodput_hysteresis(ladder.back().result,
                                              ladder.back().config);
  std::cout << "\nafter the burst clears: unprotected goodput sits at "
            << h_un.recovery_ratio() * 100
            << "% of its pre-fault level (metastable), the protected "
               "stack at "
            << h_pr.recovery_ratio() * 100 << "% -- "
            << ladder.back().result.shed_queries << " queries shed, "
            << ladder.back().result.rejected_requests
            << " requests bounced off bounded queues, "
            << ladder.back().result.breaker_open_transitions
            << " breaker opens\n";
  return 0;
}
