// Data-centric personalized healthcare (Table A.1): a wearable ECG patch.
//
// The example runs the full sensor-side pipeline the paper sketches:
//   1. synthesize an ECG stream;
//   2. pick the filtering precision with the approximate-computing model
//      (enough SNR to keep the QRS complex, minimum energy);
//   3. decide where to compute -- on-sensor filtering vs shipping raw
//      samples over the radio -- with the tradeoff model;
//   4. size the energy store: battery life, and whether the patch can run
//      batteryless on harvested energy (intermittent computing);
//   5. choose the silicon with the DSE engine under the 10 mW rung.

#include <iostream>

#include "core/arch21.hpp"

int main() {
  using namespace arch21;
  std::cout << "wearable ECG patch design study\n"
            << "===============================\n\n";

  // --- 1+2: signal and precision choice -------------------------------
  const auto rows = sensor::approx_sweep(4096, 42);
  const sensor::ApproxRow* chosen = nullptr;
  for (const auto& r : rows) {
    if (r.technique == "precision" && r.snr_db >= 25.0) {
      if (chosen == nullptr || r.energy_rel < chosen->energy_rel) chosen = &r;
    }
  }
  std::cout << "precision scaling: ";
  if (chosen != nullptr) {
    std::cout << static_cast<int>(chosen->parameter)
              << " fractional bits give " << TextTable::num(chosen->snr_db, 3)
              << " dB SNR at " << TextTable::num(chosen->energy_rel * 100, 3)
              << "% of full-precision multiplier energy\n";
  } else {
    std::cout << "no reduced-precision point met the 25 dB bar\n";
  }

  // --- 3: where to compute --------------------------------------------
  const energy::Catalogue cat(*tech::find_node("22nm"));
  sensor::StreamProfile stream;
  stream.sample_hz = 250;
  stream.bytes_per_sample = 2;
  stream.ops_per_sample_filter = 400;
  stream.reduction_factor = 50;  // send only beats + anomalies
  std::cout << "\nplacement (average power):\n";
  const auto strategies = sensor::strategy_powers(stream, cat);
  const sensor::StrategyPower* best = &strategies[0];
  for (const auto& s : strategies) {
    std::cout << "  " << s.name << ": "
              << units::si_format(s.total_w, "W", 2) << "\n";
    if (s.total_w < best->total_w) best = &s;
  }
  std::cout << "  -> " << best->name << " wins (breakeven reduction factor "
            << TextTable::num(sensor::filter_breakeven_reduction(stream, cat),
                              3)
            << ")\n";

  // --- 4: energy store --------------------------------------------------
  sensor::Battery coin_cell(3.0 * 3600.0 * 0.225);  // CR2032: ~0.675 Wh
  std::cout << "\nCR2032 life at " << units::si_format(best->total_w, "W", 2)
            << ": "
            << TextTable::num(coin_cell.lifetime_s(best->total_w) / 86400.0, 3)
            << " days\n";

  sensor::IntermittentConfig icfg;
  icfg.work_units = 25000;  // 100 s of filtering at 250 Hz
  icfg.e_unit_j = 400 * cat.int_op();
  icfg.e_checkpoint_j = 64 * 8.0e-9;  // 64 B to FRAM at ~1 nJ/byte
  icfg.harvester.power_w = 200e-6;    // body-heat TEG
  icfg.harvester.p_active = 0.7;
  icfg.harvester.cap_j = 60e-6;
  icfg.on_threshold_j = 30e-6;
  const auto candidates = std::vector<std::uint64_t>{10, 50, 250, 1000};
  const auto pick = sensor::best_checkpoint_interval(icfg, candidates);
  icfg.checkpoint_every = pick.interval;
  const auto irun = sensor::run_intermittent(icfg);
  std::cout << "batteryless option (200 uW harvested): "
            << (irun.completed ? "viable" : "not viable") << " -- "
            << TextTable::num(
                   static_cast<double>(irun.units_committed) / icfg.work_units *
                       100,
                   3)
            << "% of work committed in "
            << TextTable::num(irun.elapsed_s, 3) << " s, "
            << irun.power_failures << " power failures, checkpoint every "
            << pick.interval << " units\n";

  // --- 5: silicon --------------------------------------------------------
  std::cout << "\nsilicon search under the 10 mW rung:\n";
  core::DesignSpace space;
  space.core_counts = {1, 2, 4};
  space.bces = {1, 4};
  const auto res = core::grid_search(space, core::profile_health_monitor(),
                                     core::PlatformClass::Sensor);
  if (const auto* winner = res.frontier.best_efficiency()) {
    std::cout << "  best: " << winner->design.to_string() << "\n        "
              << units::si_format(winner->metrics.throughput_ops, "op/s", 2)
              << " at " << units::si_format(winner->metrics.power_w, "W", 2)
              << " (" << units::si_format(winner->metrics.ops_per_watt,
                                          "op/W", 2)
              << ")\n";
  } else {
    std::cout << "  no feasible design (space too aggressive for 10 mW)\n";
  }
  std::cout << "  " << res.feasible << "/" << res.evaluated
            << " candidate designs fit the budget\n";
  return 0;
}
