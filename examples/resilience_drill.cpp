// Resilience drill (section 3's "dependable systems from undependable
// components" at datacenter scale): inject rack-correlated leaf failures
// into a 100-leaf search cluster, then switch on the mitigation ladder
// one layer at a time -- timeouts + budgeted retries, hedged requests,
// and quorum-based graceful degradation -- and watch availability,
// goodput, tail latency, and result quality respond.
//
// Every number is deterministic: the failure trace and workload are
// seeded, trials run on the work-stealing pool, and the aggregate is
// bit-identical for any ARCH21_THREADS.

#include <iostream>

#include "cloud/cluster.hpp"
#include "cloud/resilience.hpp"
#include "core/report.hpp"

int main() {
  using namespace arch21;

  cloud::ClusterConfig cfg;
  cfg.leaves = 100;
  cfg.query_rate_hz = 40;
  cfg.background_rate_hz = 30;
  cfg.background_ms = 3;
  cfg.duration_s = 8;
  cfg.seed = 7;
  cfg.faults.enabled = true;
  // ~1% per-leaf unavailability plus a rack domain per 10 leaves.
  cfg.faults.leaf = {.mtbf_hours = 50.0 / 3600, .mttr_hours = 0.5 / 3600};
  cfg.faults.leaves_per_domain = 10;
  cfg.faults.domain = {.mtbf_hours = 500.0 / 3600, .mttr_hours = 1.0 / 3600};

  cloud::ScenarioPolicies knobs;
  knobs.timeout_ms = 15;
  const auto ladder = cloud::resilience_scenarios(cfg, /*trials=*/3, knobs);
  std::cout << core::render_resilience_report(ladder);

  const auto& bare = ladder[1].result;    // failures, no mitigation
  const auto& mitigated = ladder.back().result;
  std::cout << "\nnet effect of the full policy stack under failures: "
            << "goodput " << bare.goodput_qps << " -> "
            << mitigated.goodput_qps << " qps, failed queries "
            << bare.failed_queries << " -> " << mitigated.failed_queries
            << ", result quality " << mitigated.mean_result_quality()
            << "\n";
  return 0;
}
