// QoS colocation planning (section 2.4): how much batch work can share a
// machine with a latency-critical service?
//
// The example sizes a fleet twice -- without and with the hardware QoS
// interface (cache/bandwidth partitioning) -- and prices the difference
// in servers and megawatts, connecting the paper's QoS-interface question
// to its datacenter-power concern.

#include <cmath>
#include <iostream>

#include "core/arch21.hpp"
#include "cloud/qos.hpp"

int main() {
  using namespace arch21;
  using namespace arch21::cloud;

  std::cout << "colocation planning with and without hardware QoS\n"
            << "=================================================\n\n";

  QosConfig cfg;
  std::cout << "latency-critical service: " << cfg.lc_rate_hz
            << " req/s at " << cfg.lc_service_ms << " ms, SLO p99 <= "
            << cfg.slo_p99_ms << " ms\n\n";

  const double safe_shared = max_safe_be_utilization(cfg, false);
  const double safe_part = max_safe_be_utilization(cfg, true);
  const double lc_util = cfg.lc_rate_hz * cfg.lc_service_ms * 1e-3;

  TextTable t({"mode", "max safe BE load", "BE goodput", "machine util"});
  t.row({"shared (no QoS)", TextTable::num(safe_shared),
         TextTable::num(safe_shared), TextTable::num(lc_util + safe_shared)});
  t.row({"partitioned (QoS)", TextTable::num(safe_part),
         TextTable::num(safe_part * (1.0 - cfg.be_partition_penalty)),
         TextTable::num(std::min(
             1.0, lc_util + safe_part * (1.0 - cfg.be_partition_penalty)))});
  t.print(std::cout);

  // Fleet implication: a fixed batch demand must run somewhere.  Without
  // colocation headroom it needs dedicated batch servers.
  const double batch_demand = 800.0;  // machine-equivalents of batch work
  const double goodput_shared = safe_shared;
  const double goodput_part = safe_part * (1.0 - cfg.be_partition_penalty);
  const double lc_fleet = 1000;  // LC servers either way

  auto extra_servers = [&](double goodput_per_lc_server) {
    const double absorbed = lc_fleet * goodput_per_lc_server;
    return std::max(0.0, batch_demand - absorbed);
  };
  const double dedicated_shared = extra_servers(goodput_shared);
  const double dedicated_part = extra_servers(goodput_part);

  ServerPower srv;
  const double w_shared =
      (lc_fleet + dedicated_shared) * srv.power(0.6) * 1.4;
  const double w_part = (lc_fleet + dedicated_part) * srv.power(0.8) * 1.4;

  std::cout << "\nfleet sizing for " << batch_demand
            << " machine-equivalents of batch work + " << lc_fleet
            << " LC servers:\n"
            << "  shared:      " << dedicated_shared
            << " dedicated batch servers -> "
            << units::si_format(w_shared, "W", 2) << "\n"
            << "  partitioned: " << dedicated_part
            << " dedicated batch servers -> "
            << units::si_format(w_part, "W", 2) << "\n"
            << "  saving: "
            << TextTable::num((1.0 - w_part / w_shared) * 100, 3)
            << "% of facility power from the QoS interface alone\n";
  return 0;
}
