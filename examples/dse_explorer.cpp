// Drive the cross-layer DSE engine from the command line and emit the
// Pareto frontier as CSV (stdout) for plotting.
//
// Usage:
//   dse_explorer [app] [platform] [searcher] [--report]
//     app:      vision | health | graph | sim       (default vision)
//     platform: sensor | portable | departmental | datacenter
//               (default portable)
//     searcher: grid | random | hill                (default grid)
//     --report: emit a markdown design report instead of CSV

#include <cstring>
#include <iostream>
#include <string>

#include "core/arch21.hpp"

namespace {

using namespace arch21;

core::AppProfile pick_app(const std::string& s) {
  if (s == "health") return core::profile_health_monitor();
  if (s == "graph") return core::profile_graph_analytics();
  if (s == "sim") return core::profile_scientific_sim();
  return core::profile_mobile_vision();
}

core::PlatformClass pick_platform(const std::string& s) {
  if (s == "sensor") return core::PlatformClass::Sensor;
  if (s == "departmental") return core::PlatformClass::Departmental;
  if (s == "datacenter") return core::PlatformClass::Datacenter;
  return core::PlatformClass::Portable;
}

}  // namespace

int main(int argc, char** argv) {
  bool report = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  const std::string app_name = !args.empty() ? args[0] : "vision";
  const std::string platform_name = args.size() > 1 ? args[1] : "portable";
  const std::string searcher = args.size() > 2 ? args[2] : "grid";

  const auto app = pick_app(app_name);
  const auto pc = pick_platform(platform_name);

  core::DesignSpace space;
  core::DseResult res;
  if (searcher == "random") {
    res = core::random_search(space, app, pc, 2000, 1);
  } else if (searcher == "hill") {
    res = core::hill_climb(space, app, pc, 25, 1);
  } else {
    res = core::grid_search(space, app, pc);
  }

  if (report) {
    std::cout << core::render_report(res, app, pc);
    return 0;
  }

  std::cerr << "searched " << res.evaluated << " designs for '" << app.name
            << "' @ " << core::to_string(pc) << ": " << res.feasible
            << " feasible, frontier size " << res.frontier.size() << "\n";
  if (const auto* b = res.frontier.best_efficiency()) {
    std::cerr << "best efficiency: " << b->design.to_string() << " -> "
              << units::si_format(b->metrics.ops_per_watt, "op/W", 2) << "\n";
  }

  // CSV to stdout.
  TextTable csv({"node", "vdd_scale", "cores", "bce", "accel", "accel_area",
                 "llc_mib", "stacked", "throughput_ops", "power_w",
                 "ops_per_watt"});
  for (const auto& p : res.frontier.sorted_by_power()) {
    csv.row({p.design.node, TextTable::num(p.design.vdd_scale),
             std::to_string(p.design.cores),
             TextTable::num(p.design.bce_per_core),
             accel::to_string(p.design.accel),
             TextTable::num(p.design.accel_area_fraction),
             TextTable::num(p.design.llc_mib),
             p.design.stacked_dram ? "1" : "0",
             TextTable::num(p.metrics.throughput_ops, 6),
             TextTable::num(p.metrics.power_w, 6),
             TextTable::num(p.metrics.ops_per_watt, 6)});
  }
  csv.write_csv(std::cout);
  return 0;
}
