// Quickstart: five minutes with arch21.
//
// Builds a platform (technology node + cores + accelerator + memory),
// evaluates an application profile on it, checks the result against the
// white paper's efficiency ladder, and peeks at three substrate models
// (DVFS curve, tail amplification, ECC).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/arch21.hpp"

int main() {
  using namespace arch21;

  std::cout << "arch21 quickstart\n=================\n\n";

  // 1. Describe the application: a mobile computer-vision workload.
  const core::AppProfile app = core::profile_mobile_vision();
  std::cout << "application: " << app.name
            << " (parallel fraction " << app.parallel_fraction << ", "
            << app.mem_bytes_per_op << " B/op memory traffic)\n\n";

  // 2. Describe a candidate machine, one knob per layer.
  core::DesignPoint d;
  d.node = "22nm";        // circuit/technology layer
  d.vdd_scale = 0.8;      // energy-first: run below nominal supply
  d.cores = 16;           // architecture: multicore
  d.bce_per_core = 4;     //   medium cores (Pollack sqrt(4) = 2x scalar)
  d.accel = accel::EngineClass::GpuSimt;  // specialization
  d.accel_area_fraction = 0.25;
  d.llc_mib = 8;          // memory system
  d.stacked_dram = true;  // 3D-stacked DRAM
  std::cout << "design: " << d.to_string() << "\n\n";

  // 3. Evaluate it for the portable platform class (10 W cap).
  const core::Metrics m =
      core::evaluate(d, app, core::PlatformClass::Portable);
  std::cout << "evaluation @ portable (10 W cap):\n"
            << "  throughput : " << units::si_format(m.throughput_ops, "op/s")
            << "\n  power      : " << units::si_format(m.power_w, "W")
            << " (compute " << units::si_format(m.p_compute_w, "W", 1)
            << ", memory " << units::si_format(m.p_memory_w, "W", 1)
            << ", leak " << units::si_format(m.p_leak_w, "W", 1) << ")\n"
            << "  efficiency : " << units::si_format(m.ops_per_watt, "op/W")
            << "\n";

  // 4. How far is that from the paper's tera-op@10W rung?
  const auto rung = energy::ladder()[1];
  const auto verdict = energy::assess(rung, m.ops_per_watt);
  std::cout << "  ladder gap : " << TextTable::num(verdict.gap, 3)
            << "x short of " << units::si_format(rung.required_ops_per_watt(),
                                                 "op/W")
            << "\n\n";

  // 5. Substrate peeks.
  const auto dvfs = tech::DvfsModel::for_node(*tech::find_node("22nm"));
  std::cout << "DVFS: minimum-energy supply for this node is "
            << TextTable::num(dvfs.min_energy_voltage(), 3) << " V (vs "
            << dvfs.params().vnom << " V nominal)\n";

  std::cout << "Tail: at fan-out 100, "
            << TextTable::num(cloud::tail_amplification(100, 0.99) * 100, 3)
            << "% of requests see the leaf p99 latency\n";

  const auto cw = reliab::ecc_encode(0xdeadbeef);
  const auto fixed = reliab::ecc_decode(reliab::flip_bit(cw, 13));
  std::cout << "ECC: flipped bit 13 of a SECDED word -> "
            << reliab::to_string(fixed.status) << ", data "
            << (fixed.data == 0xdeadbeef ? "restored" : "LOST") << "\n";

  return 0;
}
