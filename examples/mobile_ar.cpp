// Portable edge device (section 2.1): an augmented-reality feature on a
// 10 W phone SoC.
//
// The example exercises the specialization and offload machinery:
//   1. characterize the AR kernels (tracking, rendering, scene
//      understanding) as KernelProfiles;
//   2. ask the offload planner where each kernel should run -- big core,
//      GPU, or NPU-style ASIC block -- given transfer costs;
//   3. check the whole phase pipeline against the 10 W budget with the
//      power-budget tracker and DVFS governor.

#include <iostream>
#include <vector>

#include "core/arch21.hpp"

int main() {
  using namespace arch21;
  using accel::EngineClass;
  using accel::KernelProfile;

  std::cout << "mobile AR power planning\n========================\n\n";

  // --- 1: kernels ---------------------------------------------------------
  struct ArKernel {
    KernelProfile k;
    double rate_hz;  // invocations per second
  };
  std::vector<ArKernel> kernels;
  {
    KernelProfile track;
    track.name = "feature-tracking";
    track.ops = 2e8;
    track.bytes_moved = 8e6;
    track.data_parallel = 0.9;
    track.regularity = 0.8;
    kernels.push_back({track, 30});
    KernelProfile render;
    render.name = "rendering";
    render.ops = 8e8;
    render.bytes_moved = 3e7;
    render.data_parallel = 0.97;
    render.regularity = 0.95;
    kernels.push_back({render, 60});
    KernelProfile scene;
    scene.name = "scene-dnn";
    scene.ops = 3e9;
    scene.bytes_moved = 2e7;
    scene.data_parallel = 0.98;
    scene.regularity = 0.97;
    kernels.push_back({scene, 5});
  }

  // --- 2: placement ---------------------------------------------------------
  const energy::Catalogue cat(*tech::find_node("22nm"));
  const auto ladder = accel::specialization_ladder();
  const auto& host = ladder[0];  // big core
  const noc::LinkTech onchip = noc::link_catalog()[0];

  energy::PowerBudget budget("phone-soc", 10.0);
  budget.add("display+radio+rest-of-system", 3.0);

  std::cout << "kernel placement (host = big core, candidates = GPU/NPU):\n";
  TextTable t({"kernel", "choice", "speedup", "energy gain", "avg W"});
  for (const auto& [k, rate] : kernels) {
    const accel::Engine* best_engine = &host;
    accel::OffloadDecision best{};
    best.accel.energy_j = host.energy_j(k, cat);
    best.accel.time_s = host.exec_time_s(k);
    double best_energy = best.accel.energy_j;
    for (const auto& cand : ladder) {
      if (cand.cls != EngineClass::GpuSimt && cand.cls != EngineClass::Asic) {
        continue;
      }
      const auto d = accel::plan_offload(k, host, cand, onchip, cat);
      if (d.offload_energy && d.accel.energy_j < best_energy) {
        best_energy = d.accel.energy_j;
        best_engine = &cand;
        best = d;
      }
    }
    const double avg_w = best_energy * rate;
    budget.add(k.name, avg_w);
    t.row({k.name, best_engine->name,
           TextTable::num(best.speedup == 0 ? 1 : best.speedup, 3),
           TextTable::num(best.energy_gain == 0 ? 1 : best.energy_gain, 3),
           TextTable::num(avg_w, 3)});
  }
  t.print(std::cout);

  // --- 3: the budget ---------------------------------------------------------
  std::cout << "\nbudget '" << budget.name() << "' (cap "
            << units::si_format(budget.cap(), "W", 0) << "): total "
            << units::si_format(budget.total(), "W", 2) << ", "
            << (budget.fits() ? "fits" : "OVER") << ", headroom "
            << units::si_format(budget.headroom(), "W", 2) << "\n";
  if (const auto* hog = budget.dominant()) {
    std::cout << "dominant consumer: " << hog->name << " ("
              << units::si_format(hog->watts, "W", 2) << ")\n";
  }

  // If over budget, let the DVFS governor find the sustainable supply.
  if (!budget.fits()) {
    const auto dvfs = tech::DvfsModel::for_node(*tech::find_node("22nm"));
    const double v = dvfs.voltage_for_power(budget.cap() - 3.0);
    std::cout << "governor: throttle compute rail to "
              << TextTable::num(v, 3) << " V ("
              << units::si_format(dvfs.frequency(v), "Hz", 2) << ")\n";
  }
  return 0;
}
