// Human network analytics / web search (Table A.1): engineering a
// 100-leaf fork-join service to an SLO.
//
// The example walks the workflow an infrastructure architect would run:
//   1. quantify the tail-amplification problem at the service's fan-out;
//   2. pick a hedging policy that meets the p99 SLO at acceptable extra
//      backend load (sweep of hedge delays);
//   3. validate the choice in the DES cluster, where hedges interfere
//      with queueing;
//   4. size the fleet's power with the facility model.

#include <iostream>

#include "core/arch21.hpp"

int main() {
  using namespace arch21;
  using namespace arch21::cloud;

  std::cout << "search-cluster SLO engineering\n"
            << "==============================\n\n";
  constexpr unsigned kFanout = 100;
  constexpr double kSloP99Ms = 150.0;

  // --- 1: the problem ---------------------------------------------------
  auto leaf = make_leaf_distribution(5.0, 0.4, 0.02, 60.0, 1.4);
  const auto base = simulate_fork_join(kFanout, 20000, leaf, {}, 1);
  std::cout << "without mitigation: p50 "
            << TextTable::num(base.request_latency_ms.p50, 3) << " ms, p99 "
            << TextTable::num(base.request_latency_ms.p99, 4) << " ms ("
            << TextTable::num(tail_amplification(kFanout, 0.99) * 100, 3)
            << "% of requests wait >= leaf p99) -- SLO "
            << (base.request_latency_ms.p99 <= kSloP99Ms ? "met" : "MISSED")
            << "\n\n";

  // --- 2: hedging sweep ---------------------------------------------------
  std::cout << "hedge-delay sweep (fan-out " << kFanout << "):\n";
  TextTable t({"hedge delay ms", "p99 ms", "extra load %", "meets SLO"});
  double chosen_delay = 0;
  for (double delay : {5.0, 10.0, 15.0, 25.0, 50.0}) {
    HedgePolicy pol;
    pol.kind = HedgePolicy::Kind::Hedged;
    pol.hedge_delay_ms = delay;
    const auto r = simulate_fork_join(kFanout, 20000, leaf, pol, 2);
    const bool ok =
        r.request_latency_ms.p99 <= kSloP99Ms && r.extra_load_fraction < 0.05;
    if (ok && chosen_delay == 0) chosen_delay = delay;
    t.row({TextTable::num(delay), TextTable::num(r.request_latency_ms.p99, 4),
           TextTable::num(r.extra_load_fraction * 100, 3),
           ok ? "yes (<5% load)" : "no"});
  }
  t.print(std::cout);
  if (chosen_delay == 0) chosen_delay = 25.0;
  std::cout << "  -> deploying hedge at " << chosen_delay << " ms\n\n";

  // --- 3: validate under queueing ----------------------------------------
  ClusterConfig cfg;
  cfg.leaves = kFanout;
  cfg.duration_s = 12;
  cfg.query_rate_hz = 25;
  cfg.background_rate_hz = 50;
  cfg.background_ms = 4;
  cfg.hedge_after_ms = 0;
  const auto before = simulate_cluster(cfg);
  cfg.hedge_after_ms = chosen_delay;
  const auto after = simulate_cluster(cfg);
  std::cout << "DES cluster validation (with queueing interference):\n"
            << "  p99 before: " << TextTable::num(before.query_ms.quantile(0.99), 4)
            << " ms   p99 after: "
            << TextTable::num(after.query_ms.quantile(0.99), 4)
            << " ms   hedge traffic: "
            << TextTable::num(after.hedge_fraction * 100, 3) << "%\n"
            << "  leaf utilization: "
            << TextTable::num(after.mean_leaf_utilization, 3) << "\n\n";

  // --- 4: fleet power -------------------------------------------------------
  ServerPower srv;
  Facility dc;
  dc.server = srv;
  dc.servers = 4000;
  dc.pue = 1.4;
  const double util = after.mean_leaf_utilization;
  std::cout << "fleet power at measured utilization: "
            << units::si_format(dc.power(util), "W", 2) << " for "
            << units::si_format(dc.throughput(util), "op/s", 2) << " ("
            << units::si_format(dc.ops_per_joule(util), "op/J", 2) << ")\n"
            << "energy-proportionality index of the servers: "
            << TextTable::num(srv.proportionality(), 3)
            << " (1.0 = perfectly proportional)\n";
  return 0;
}
