// Replacement-policy tests: exact cross-check of the production Cache
// against naive reference models (LRU and FIFO) under random traffic,
// plus behavioural checks for Random and tree-PLRU.

#include <gtest/gtest.h>

#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "mem/cache.hpp"
#include "util/rng.hpp"

namespace arch21::mem {
namespace {

/// Naive reference: per-set list ordered most-recent-first (LRU) or by
/// insertion (FIFO).  Tracks only hit/miss, which is what we cross-check.
class ReferenceCache {
 public:
  ReferenceCache(CacheConfig cfg, bool lru) : cfg_(cfg), lru_(lru) {
    sets_.resize(cfg.sets());
  }

  bool access(Addr addr) {
    const std::uint64_t line = addr / cfg_.line_bytes;
    const std::uint64_t set = line % cfg_.sets();
    auto& s = sets_[set];
    const auto it = std::find(s.begin(), s.end(), line);
    if (it != s.end()) {
      if (lru_) {
        s.erase(it);
        s.push_front(line);  // move to MRU
      }
      return true;
    }
    if (s.size() >= cfg_.ways) s.pop_back();  // evict LRU tail / FIFO oldest
    s.push_front(line);
    return false;
  }

 private:
  CacheConfig cfg_;
  bool lru_;
  std::vector<std::list<std::uint64_t>> sets_;
};

class PolicyCrossCheck
    : public ::testing::TestWithParam<std::tuple<Replacement, std::uint64_t>> {
};

TEST_P(PolicyCrossCheck, MatchesReferenceModelExactly) {
  const auto [policy, seed] = GetParam();
  CacheConfig cfg{.size_bytes = 2048, .line_bytes = 64, .ways = 4};
  cfg.policy = policy;
  Cache cache(cfg);
  ReferenceCache ref(cfg, policy == Replacement::Lru);
  Rng rng(seed);
  for (int i = 0; i < 20000; ++i) {
    // 24 hot lines over 8 sets: plenty of conflict pressure.
    const Addr addr = rng.below(24) * 64 + (rng.below(3) * 2048) * 64;
    const bool hit = cache.access(addr, false).hit;
    const bool ref_hit = ref.access(addr);
    ASSERT_EQ(hit, ref_hit) << "iteration " << i << " policy "
                            << to_string(policy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LruFifo, PolicyCrossCheck,
    ::testing::Combine(::testing::Values(Replacement::Lru, Replacement::Fifo),
                       ::testing::Values(1, 42, 777)));

TEST(Policies, FifoDiffersFromLruOnReaccessPattern) {
  // Re-touching the oldest line saves it under LRU but not under FIFO.
  CacheConfig lru_cfg{.size_bytes = 128, .line_bytes = 64, .ways = 2};
  CacheConfig fifo_cfg = lru_cfg;
  fifo_cfg.policy = Replacement::Fifo;
  Cache lru(lru_cfg);
  Cache fifo(fifo_cfg);
  // Lines A, B fill the (single) set; touch A; insert C.
  const Addr A = 0 * 128, B = 1 * 128, C = 2 * 128;
  for (Cache* c : {&lru, &fifo}) {
    c->access(A, false);
    c->access(B, false);
    c->access(A, false);
    c->access(C, false);
  }
  EXPECT_TRUE(lru.contains(A));    // LRU evicted B
  EXPECT_FALSE(lru.contains(B));
  EXPECT_FALSE(fifo.contains(A));  // FIFO evicted A (oldest insertion)
  EXPECT_TRUE(fifo.contains(B));
}

TEST(Policies, RandomIsDeterministicPerSeed) {
  CacheConfig cfg{.size_bytes = 2048, .line_bytes = 64, .ways = 4};
  cfg.policy = Replacement::Random;
  cfg.seed = 7;
  auto run = [&] {
    Cache c(cfg);
    Rng rng(3);
    std::uint64_t hits = 0;
    for (int i = 0; i < 10000; ++i) {
      hits += c.access(rng.below(64) * 64, false).hit ? 1 : 0;
    }
    return hits;
  };
  EXPECT_EQ(run(), run());
}

TEST(Policies, PlruValidation) {
  CacheConfig cfg{.size_bytes = 64 * 64, .line_bytes = 64, .ways = 32};
  cfg.policy = Replacement::Plru;
  EXPECT_THROW(Cache{cfg}, std::invalid_argument);  // > 16 ways unsupported
}

TEST(Policies, PlruApproximatesLruOnLoopingWorkload) {
  // On a working set that fits, every policy gives all-hits after warmup.
  for (auto policy : {Replacement::Lru, Replacement::Plru,
                      Replacement::Fifo, Replacement::Random}) {
    CacheConfig cfg{.size_bytes = 4096, .line_bytes = 64, .ways = 8};
    cfg.policy = policy;
    Cache c(cfg);
    for (int rep = 0; rep < 10; ++rep) {
      for (Addr a = 0; a < 4096; a += 64) c.access(a, false);
    }
    EXPECT_GT(c.stats().hit_rate(), 0.85) << to_string(policy);
  }
}

TEST(Policies, LruBeatsRandomOnSkewedTraffic) {
  // Hot/cold mix: recency-aware policies retain the hot set better.
  auto run = [](Replacement policy) {
    CacheConfig cfg{.size_bytes = 4096, .line_bytes = 64, .ways = 8};
    cfg.policy = policy;
    Cache c(cfg);
    Rng rng(11);
    for (int i = 0; i < 100000; ++i) {
      const Addr a = rng.chance(0.8) ? rng.below(48) * 64       // hot
                                     : (64 + rng.below(4096)) * 64;  // cold
      c.access(a, false);
    }
    return c.stats().hit_rate();
  };
  const double lru = run(Replacement::Lru);
  const double rnd = run(Replacement::Random);
  EXPECT_GT(lru, rnd);
  const double plru = run(Replacement::Plru);
  EXPECT_GT(plru, rnd);
  // PLRU tracks true LRU closely.
  EXPECT_NEAR(plru, lru, 0.05);
}

TEST(Policies, Names) {
  EXPECT_STREQ(to_string(Replacement::Lru), "lru");
  EXPECT_STREQ(to_string(Replacement::Plru), "plru");
  EXPECT_STREQ(to_string(Replacement::Random), "random");
  EXPECT_STREQ(to_string(Replacement::Fifo), "fifo");
}

}  // namespace
}  // namespace arch21::mem
