// Tests for FIT arithmetic, scrubbing math, Daly checkpointing (analytic
// vs simulated), availability algebra, and the fault-injection campaign.

#include <gtest/gtest.h>

#include <cmath>

#include "reliab/availability.hpp"
#include "reliab/checkpoint.hpp"
#include "reliab/fault_injection.hpp"
#include "reliab/fit.hpp"

namespace arch21::reliab {
namespace {

TEST(Fit, UnitConversion) {
  // 1000 FIT/Mbit over 1 Mbit = 1000 failures / 1e9 h = 1e-6 / h.
  const double bytes = 1e6 / 8.0;
  EXPECT_NEAR(fit_to_flips_per_second(1000, bytes) * 3600.0, 1e-6, 1e-12);
  // Scales linearly with capacity.
  EXPECT_NEAR(fit_to_flips_per_second(1000, bytes * 8) /
                  fit_to_flips_per_second(1000, bytes),
              8.0, 1e-9);
}

TEST(Fit, VoltageSensitivityExponential) {
  EXPECT_DOUBLE_EQ(ser_voltage_multiplier(1.0, 1.0), 1.0);
  const double low = ser_voltage_multiplier(0.7, 1.0, 0.15);
  EXPECT_NEAR(low, std::exp(0.3 / 0.15), 1e-9);
  EXPECT_GT(low, 7.0);  // e^2
}

TEST(Fit, DoubleErrorProbabilitySmallLambda) {
  // P(>=2) ~ lambda^2/2 for small lambda.
  const double p = double_error_probability(1e-12, 3600.0, 72);
  const double lambda = 1e-12 * 72 * 3600;
  EXPECT_NEAR(p, lambda * lambda / 2.0, p * 0.01);
  EXPECT_EQ(double_error_probability(0, 100), 0.0);
}

TEST(Fit, FasterScrubbingRaisesMtbe) {
  const double bytes = 64.0 * (1ull << 30);  // 64 GiB
  const double slow = mtbe_hours(50000, bytes, 24 * 3600.0);
  const double fast = mtbe_hours(50000, bytes, 600.0);
  EXPECT_GT(fast, slow * 10);
}

TEST(Checkpoint, DalyFormula) {
  CheckpointParams p;
  p.delta_s = 50;
  p.mtbf_s = 100000;
  EXPECT_NEAR(daly_optimal_interval(p), std::sqrt(2 * 50.0 * 100000.0) - 50.0,
              1e-9);
  // Interval never shorter than the checkpoint cost itself.
  p.mtbf_s = 10;
  EXPECT_GE(daly_optimal_interval(p), p.delta_s);
  p.delta_s = 0;
  EXPECT_THROW(daly_optimal_interval(p), std::invalid_argument);
}

TEST(Checkpoint, ExpectedRuntimeConvexWithMinimumNearDaly) {
  CheckpointParams p;
  p.work_s = 1e6;
  p.delta_s = 60;
  p.restart_s = 120;
  p.mtbf_s = 86400;
  const double tau_star = daly_optimal_interval(p);
  const double at_star = expected_runtime(p, tau_star);
  // Both much-smaller and much-larger intervals are worse.
  EXPECT_GT(expected_runtime(p, tau_star / 8), at_star);
  EXPECT_GT(expected_runtime(p, tau_star * 8), at_star);
  // And the runtime exceeds the raw work (overhead is positive).
  EXPECT_GT(at_star, p.work_s);
  EXPECT_THROW(expected_runtime(p, 0), std::invalid_argument);
}

TEST(Checkpoint, SimulationTracksAnalyticModel) {
  CheckpointParams p;
  p.work_s = 2e5;
  p.delta_s = 60;
  p.restart_s = 120;
  p.mtbf_s = 20000;
  const double tau = daly_optimal_interval(p);
  const double analytic = expected_runtime(p, tau);
  const double simulated = mean_simulated_runtime(p, tau, 400, 77);
  EXPECT_NEAR(simulated / analytic, 1.0, 0.1);
}

TEST(Checkpoint, NoFailuresMeansDeterministicRuntime) {
  CheckpointParams p;
  p.work_s = 1000;
  p.delta_s = 10;
  p.restart_s = 0;
  p.mtbf_s = 1e15;  // effectively never fails
  Rng rng(1);
  const double t = simulate_runtime(p, 100, rng);
  // 10 segments of (100 + 10).
  EXPECT_NEAR(t, 1100.0, 1e-6);
}

TEST(Availability, ComponentBasics) {
  Component c{.mtbf_hours = 9999, .mttr_hours = 1};
  EXPECT_NEAR(c.availability(), 0.9999, 1e-9);
  EXPECT_EQ(nines(c.availability()), 4u);  // exactly four nines
  EXPECT_EQ(nines(0.999), 3u);
  EXPECT_EQ(nines(0.99999), 5u);
  EXPECT_EQ(nines(0.995), 2u);  // floors between nines
  EXPECT_EQ(nines(1.0), 12u);
  EXPECT_EQ(nines(0.0), 0u);
}

TEST(Availability, DowntimePerYear) {
  // Five 9s = ~5.26 minutes/year (Table A.2's "all but five minutes").
  EXPECT_NEAR(downtime_minutes_per_year(0.99999), 5.26, 0.05);
  EXPECT_NEAR(downtime_minutes_per_year(0.99), 5259.6, 1.0);
}

TEST(Availability, SeriesHurtsParallelHelps) {
  Component c{.mtbf_hours = 1000, .mttr_hours = 10};
  const double single = c.availability();
  EXPECT_LT(series_availability(c, 3), single);
  EXPECT_GT(k_of_n_availability(c, 1, 2), single);
  EXPECT_GT(k_of_n_availability(c, 1, 3), k_of_n_availability(c, 1, 2));
  // k-of-n with k = n equals series.
  EXPECT_NEAR(k_of_n_availability(c, 3, 3), series_availability(c, 3), 1e-12);
}

TEST(Availability, ReplicasForFiveNines) {
  // A mediocre server (~99% available) needs 3 replicas for five 9s.
  Component c{.mtbf_hours = 990, .mttr_hours = 10};
  EXPECT_NEAR(c.availability(), 0.99, 1e-9);
  const unsigned n = replicas_for_availability(c, 0.99999);
  EXPECT_EQ(n, 3u);
  // Unreachable target reports 0.
  Component awful{.mtbf_hours = 1, .mttr_hours = 10};
  EXPECT_EQ(replicas_for_availability(awful, 0.9999999999, 4), 0u);
}

TEST(Campaign, ZeroRateAllClean) {
  const auto r = run_campaign({.words = 5000, .flip_prob_per_bit = 0.0,
                               .seed = 1});
  EXPECT_EQ(r.clean, 5000u);
  EXPECT_EQ(r.silent, 0u);
  EXPECT_EQ(r.detected, 0u);
  EXPECT_EQ(r.uncorrectable_rate(), 0.0);
}

TEST(Campaign, ModerateRateMostlyCorrected) {
  const auto r = run_campaign({.words = 20000, .flip_prob_per_bit = 1e-3,
                               .seed = 2});
  EXPECT_GT(r.corrected, 500u);          // singles happen and are fixed
  EXPECT_LT(r.uncorrectable_rate(), 0.01);  // doubles are rare
}

TEST(Campaign, HighRateOverwhelmsSecded) {
  const auto r = run_campaign({.words = 20000, .flip_prob_per_bit = 0.05,
                               .seed = 3});
  // At 5% BER per bit, multi-bit errors dominate: SECDED can no longer
  // hide the unreliability (the Table 1 inflection).
  EXPECT_GT(r.uncorrectable_rate(), 0.3);
  EXPECT_GT(r.detected, 0u);
}

TEST(Campaign, RatesMonotoneInBer) {
  double prev = -1;
  for (double ber : {1e-5, 1e-4, 1e-3, 1e-2}) {
    const auto r = run_campaign({.words = 30000, .flip_prob_per_bit = ber,
                                 .seed = 4});
    const double rate = r.uncorrectable_rate();
    EXPECT_GE(rate, prev);
    prev = rate;
  }
}

TEST(Campaign, CountsAddUp) {
  const auto r = run_campaign({.words = 10000, .flip_prob_per_bit = 1e-3,
                               .seed = 5});
  EXPECT_EQ(r.clean + r.corrected + r.detected + r.silent, r.words);
}

TEST(Campaign, RejectsInvalidConfig) {
  try {
    run_campaign({.words = 0});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("words"), std::string::npos);
  }
  EXPECT_THROW(run_campaign({.words = 100, .flip_prob_per_bit = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(run_campaign({.words = 100, .flip_prob_per_bit = 1.5}),
               std::invalid_argument);
  // Boundary values are legal.
  EXPECT_NO_THROW(run_campaign({.words = 10, .flip_prob_per_bit = 0.0}));
  EXPECT_NO_THROW(run_campaign({.words = 10, .flip_prob_per_bit = 1.0}));
}

TEST(Availability, KOfNEdgeCases) {
  const Component c{.mtbf_hours = 9999, .mttr_hours = 1};
  // k == 0: trivially available, even with zero components present.
  EXPECT_DOUBLE_EQ(k_of_n_availability(c, 0, 3), 1.0);
  EXPECT_DOUBLE_EQ(k_of_n_availability(c, 0, 0), 1.0);
  // Requiring more components than exist is a caller bug, not a 0.
  EXPECT_THROW(k_of_n_availability(c, 4, 3), std::invalid_argument);
  EXPECT_THROW(k_of_n_availability(c, 1, 0), std::invalid_argument);
}

TEST(Availability, NinesClampsAtPerfect) {
  // a >= 1 means -log10(0) = inf: clamp to 12 instead of UB/overflow.
  EXPECT_EQ(nines(1.0), 12u);
  EXPECT_EQ(nines(1.0000001), 12u);
  EXPECT_EQ(nines(0.999999999999999), 12u);  // beyond 12 nines still 12
  EXPECT_EQ(nines(-0.5), 0u);
}

TEST(Availability, ReplicasUnreachableReturnsZero) {
  const Component coin{.mtbf_hours = 1, .mttr_hours = 1};  // a = 0.5
  // 1-of-n needs 1 - 0.5^n >= target; ten nines within 4 replicas is
  // impossible -> sentinel 0, not max_n.
  EXPECT_EQ(replicas_for_availability(coin, 0.9999999999, 4), 0u);
  // Same target, enough headroom: 0.5^14 < 1e-4 <= 0.5^13 -> 14 replicas.
  EXPECT_EQ(replicas_for_availability(coin, 0.9999, 16), 14u);
  EXPECT_EQ(replicas_for_availability(coin, 0.9999, 8), 0u);
}

}  // namespace
}  // namespace arch21::reliab
