// Tests for descriptive statistics: Welford accumulation, merging,
// percentile estimators against closed forms, fits, and error handling.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace arch21 {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.5, 2.5, -3.0, 7.25, 0.0, 4.5};
  OnlineStats s;
  for (double x : xs) s.add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
  EXPECT_NEAR(s.sum(), 12.75, 1e-12);
}

TEST(OnlineStats, SampleVarianceUsesNMinusOne) {
  OnlineStats s;
  s.add(1);
  s.add(3);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);         // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);  // n-1
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(42);
  OnlineStats all;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5, 2);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1);
  a.add(2);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(Percentiles, ClosedFormOnArithmeticSequence) {
  // 0..100: percentile q should be 100q exactly under type-7.
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  Percentiles p(xs);
  EXPECT_DOUBLE_EQ(p.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 100.0);
  EXPECT_DOUBLE_EQ(p.at(0.5), 50.0);
  EXPECT_DOUBLE_EQ(p.at(0.99), 99.0);
  EXPECT_DOUBLE_EQ(p.at(0.25), 25.0);
}

TEST(Percentiles, InterpolatesBetweenRanks) {
  Percentiles p({10.0, 20.0});
  EXPECT_DOUBLE_EQ(p.at(0.5), 15.0);
  EXPECT_DOUBLE_EQ(p.at(0.75), 17.5);
}

TEST(Percentiles, SingleElement) {
  Percentiles p({7.0});
  EXPECT_DOUBLE_EQ(p.at(0.0), 7.0);
  EXPECT_DOUBLE_EQ(p.at(0.5), 7.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 7.0);
}

TEST(Percentiles, EmptyThrows) {
  Percentiles p((std::vector<double>()));
  EXPECT_THROW(p.at(0.5), std::invalid_argument);
  EXPECT_THROW(p.min(), std::invalid_argument);
  EXPECT_THROW(p.max(), std::invalid_argument);
}

TEST(Percentiles, UnsortedInputHandled) {
  Percentiles p({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
  EXPECT_DOUBLE_EQ(p.min(), 1.0);
  EXPECT_DOUBLE_EQ(p.max(), 5.0);
}

TEST(Summary, FieldsConsistent) {
  std::vector<double> xs;
  for (int i = 1; i <= 1000; ++i) xs.push_back(i);
  const Summary s = Summary::of(xs);
  EXPECT_EQ(s.n, 1000u);
  EXPECT_NEAR(s.mean, 500.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_NEAR(s.p50, 500.5, 1.0);
  EXPECT_NEAR(s.p99, 990.0, 1.5);
  EXPECT_GT(s.p999, s.p99);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Summary, EmptyInput) {
  const Summary s = Summary::of({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Correlation, PerfectPositiveAndNegative) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
  std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(xs, zs), -1.0, 1e-12);
}

TEST(Correlation, IndependentNearZero) {
  Rng rng(9);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.uniform());
    ys.push_back(rng.uniform());
  }
  EXPECT_NEAR(correlation(xs, ys), 0.0, 0.02);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const auto f = linear_fit(xs, ys);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
}

TEST(LinearFit, DegenerateInput) {
  const auto f = linear_fit(std::vector<double>{1.0}, std::vector<double>{2.0});
  EXPECT_EQ(f.slope, 0.0);
}

TEST(Geomean, KnownValues) {
  std::vector<double> xs = {1.0, 100.0};
  EXPECT_NEAR(geomean(xs), 10.0, 1e-9);
  std::vector<double> ys = {2.0, 2.0, 2.0};
  EXPECT_NEAR(geomean(ys), 2.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

// Property: percentile() free function agrees with Percentiles reader.
class PercentileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileProperty, FreeFunctionMatchesReader) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(0, 10));
  Percentiles p(xs);
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile(xs, q), p.at(q));
  }
  // Monotonicity of quantiles.
  double prev = p.at(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = p.at(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Values(1, 2, 3, 17, 99, 1234));

}  // namespace
}  // namespace arch21
