// Tests for the small-buffer-optimized callable: inline vs heap storage,
// move semantics, move-only callables, and the heap-fallback counter the
// DES no-allocation guarantee is verified with.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "util/inline_function.hpp"

namespace arch21 {
namespace {

using Fn48 = InlineFunction<48>;

TEST(InlineFunction, DefaultConstructedIsEmpty) {
  Fn48 f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, InvokesSmallCallableWithoutHeap) {
  const auto before = inline_function_heap_allocations();
  int hits = 0;
  Fn48 f([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(inline_function_heap_allocations(), before);
}

TEST(InlineFunction, CapacityBoundaryStaysInline) {
  // A callable of exactly capacity() bytes must not allocate; one byte
  // past it must.
  static int out = 0;
  std::array<char, Fn48::capacity()> payload{};
  payload[0] = 42;
  auto at_capacity = [payload] { out = payload[0]; };
  static_assert(sizeof(at_capacity) == Fn48::capacity());
  const auto before = inline_function_heap_allocations();
  Fn48 f(at_capacity);
  EXPECT_EQ(inline_function_heap_allocations(), before);
  f();
  EXPECT_EQ(out, 42);

  std::array<char, Fn48::capacity() + 1> bigger{};
  auto over_capacity = [bigger] { out = bigger[0]; };
  static_assert(sizeof(over_capacity) > Fn48::capacity());
  Fn48 g(over_capacity);
  EXPECT_EQ(inline_function_heap_allocations(), before + 1);
}

TEST(InlineFunction, OversizedCallableUsesHeapAndCounts) {
  const auto before = inline_function_heap_allocations();
  std::array<char, 128> big{};
  big[7] = 9;
  int out = 0;
  Fn48 f([big, &out] { out = big[7]; });
  EXPECT_EQ(inline_function_heap_allocations(), before + 1);
  f();
  EXPECT_EQ(out, 9);
}

TEST(InlineFunction, MovePreservesStateInline) {
  int count = 0;
  Fn48 a([&count, acc = 0]() mutable { count = ++acc; });
  a();
  Fn48 b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(count, 2);  // internal accumulator moved with the callable
  Fn48 c;
  c = std::move(b);
  c();
  EXPECT_EQ(count, 3);
}

TEST(InlineFunction, MovePreservesStateHeap) {
  const auto before = inline_function_heap_allocations();
  std::array<char, 100> pad{};
  int count = 0;
  Fn48 a([&count, pad, acc = 0]() mutable {
    (void)pad;
    count = ++acc;
  });
  EXPECT_EQ(inline_function_heap_allocations(), before + 1);
  a();
  Fn48 b(std::move(a));
  b();
  EXPECT_EQ(count, 2);
  // Moving a heap-stored callable transfers the pointer: no new allocation.
  EXPECT_EQ(inline_function_heap_allocations(), before + 1);
}

TEST(InlineFunction, AcceptsMoveOnlyCallables) {
  auto p = std::make_unique<int>(31);
  int out = 0;
  Fn48 f([p = std::move(p), &out] { out = *p; });
  f();
  EXPECT_EQ(out, 31);
}

TEST(InlineFunction, AcceptsStdFunctionLvalue) {
  int hits = 0;
  std::function<void()> fn = [&hits] { ++hits; };
  Fn48 f(fn);  // copied in; sizeof(std::function) <= 48 stays inline
  fn();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, MoveAssignDestroysPreviousTarget) {
  int destroyed = 0;
  struct Sentinel {
    int* d;
    explicit Sentinel(int* dd) : d(dd) {}
    Sentinel(Sentinel&& o) noexcept : d(std::exchange(o.d, nullptr)) {}
    ~Sentinel() {
      if (d) ++*d;
    }
    void operator()() {}
  };
  {
    Fn48 a{Sentinel(&destroyed)};
    EXPECT_EQ(destroyed, 0);
    a = Fn48([] {});
    EXPECT_EQ(destroyed, 1);  // old callable destroyed on assignment
  }
  EXPECT_EQ(destroyed, 1);
}

}  // namespace
}  // namespace arch21
