// Tests for the server-side overload-protection layer: bounded Resource
// queues with pluggable disciplines (FIFO / adaptive LIFO / deadline
// drop), admission control and load shedding at the query root,
// per-replica circuit breakers, the fault burst + goodput-window
// instrumentation, and ClusterResult::merge() over the new telemetry.

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/policy.hpp"
#include "cloud/resilience.hpp"
#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/inline_function.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace arch21 {
namespace {

using cloud::ClusterConfig;
using cloud::ClusterResult;
using des::QueueDiscipline;
using des::QueuePolicy;
using des::Resource;
using des::Simulator;
using des::Time;

// ------------------------------------------------ bounded Resource queue

TEST(BoundedQueue, RejectsWhenFullAndNeverFiresCallback) {
  Simulator sim;
  QueuePolicy qp;
  qp.capacity = 2;
  Resource r(sim, 1, qp);
  int done = 0;
  bool rejected_fired = false;
  auto inc = [&done](Time, Time) { ++done; };
  EXPECT_TRUE(r.request(5.0, inc));  // in service
  EXPECT_TRUE(r.request(1.0, inc));  // queued
  EXPECT_TRUE(r.request(1.0, inc));  // queued (full)
  EXPECT_FALSE(
      r.request(1.0, [&rejected_fired](Time, Time) { rejected_fired = true; }));
  EXPECT_EQ(r.rejected(), 1u);
  EXPECT_EQ(r.queue_length(), 2u);
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_FALSE(rejected_fired);
  EXPECT_EQ(r.queue_high_water(), 2u);
  // Drained: the station accepts again.
  EXPECT_TRUE(r.request(1.0, inc));
  sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(r.rejected(), 1u);
}

TEST(BoundedQueue, AdaptiveLifoServesNewestAboveThreshold) {
  Simulator sim;
  QueuePolicy qp;
  qp.discipline = QueueDiscipline::kAdaptiveLifo;
  qp.lifo_threshold = 1;
  Resource r(sim, 1, qp);
  std::vector<int> order;
  r.request(10.0, [&order](Time, Time) { order.push_back(0); });
  for (int i = 1; i <= 3; ++i) {
    r.request(1.0, [&order, i](Time, Time) { order.push_back(i); });
  }
  sim.run();
  // Backlog at each dequeue: 3 (> threshold -> newest), 2 (> threshold ->
  // newest), 1 (<= threshold -> FIFO).
  EXPECT_EQ(order, (std::vector<int>{0, 3, 2, 1}));
}

TEST(BoundedQueue, AdaptiveLifoIsPlainFifoBelowThreshold) {
  Simulator sim;
  QueuePolicy qp;
  qp.discipline = QueueDiscipline::kAdaptiveLifo;
  qp.lifo_threshold = 8;
  Resource r(sim, 1, qp);
  std::vector<int> order;
  r.request(10.0, [&order](Time, Time) { order.push_back(0); });
  for (int i = 1; i <= 3; ++i) {
    r.request(1.0, [&order, i](Time, Time) { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(BoundedQueue, DeadlineDropsExpiredWaitersAtDequeue) {
  Simulator sim;
  QueuePolicy qp;
  qp.discipline = QueueDiscipline::kDeadline;
  qp.sojourn_target = 5.0;
  Resource r(sim, 1, qp);
  int served = 0;
  int stale = 0;
  r.request(10.0, [&served](Time, Time) { ++served; });  // frees at t=10
  // Queued at t=0: sojourn 10 > 5 when the server frees -> dropped.
  r.request(1.0, [&stale](Time, Time) { ++stale; });
  r.request(1.0, [&stale](Time, Time) { ++stale; });
  // Queued at t=9: sojourn 1 at t=10 -> served.
  sim.schedule_at(9.0, [&r, &served] {
    r.request(1.0, [&served](Time, Time) { ++served; });
  });
  sim.run();
  EXPECT_EQ(served, 2);
  EXPECT_EQ(stale, 0);
  EXPECT_EQ(r.expired(), 2u);
  EXPECT_EQ(r.completed(), 2u);
}

TEST(BoundedQueue, FailAllWithFullQueueDoesNotDoubleCount) {
  Simulator sim;
  QueuePolicy qp;
  qp.capacity = 3;
  Resource r(sim, 1, qp);
  int done = 0;
  auto inc = [&done](Time, Time) { ++done; };
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.request(2.0, inc));
  EXPECT_FALSE(r.request(2.0, inc));  // rejected at the full queue
  EXPECT_EQ(r.rejected(), 1u);

  const std::size_t lost = r.fail_all();
  EXPECT_EQ(lost, 4u);  // 3 waiting + 1 in service; the reject NOT re-counted
  EXPECT_EQ(r.dropped(), 4u);
  EXPECT_EQ(r.rejected(), 1u);
  EXPECT_EQ(r.queue_length(), 0u);
  EXPECT_EQ(r.busy(), 0u);

  // Recovered: accepts a full queue's worth again; the stale completion
  // event of the killed job must not revive anything.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.request(1.0, inc));
  sim.run();
  EXPECT_EQ(done, 4);
  // Accounting identity: accepted = completed + dropped.
  EXPECT_EQ(r.completed() + r.dropped(), 8u);
}

TEST(BoundedQueue, SteadyStateOverloadIsAllocationFree) {
  Simulator sim;
  sim.reserve(8192);
  QueuePolicy qp;
  qp.capacity = 8;
  qp.discipline = QueueDiscipline::kAdaptiveLifo;
  qp.lifo_threshold = 4;
  Resource r(sim, 1, qp);
  Rng rng(7);
  int done = 0;
  double t = 0;
  // Offered load ~2x capacity: the bounded ring stays full and rejects
  // roughly half the arrivals.
  for (int i = 0; i < 2000; ++i) {
    t += rng.exponential(0.5);
    const double s = rng.exponential(1.0);
    sim.schedule_at(t, [&r, &done, s] {
      r.request(s, [&done](Time, Time) { ++done; });
    });
  }
  const auto before = arch21::inline_function_heap_allocations();
  sim.run();
  EXPECT_EQ(arch21::inline_function_heap_allocations(), before);
  EXPECT_GT(r.rejected(), 100u);
  EXPECT_GT(done, 100);
  EXPECT_LE(r.queue_high_water(), qp.capacity);
}

TEST(BoundedQueue, DeadlineDisciplineIsAllocationFreeToo) {
  Simulator sim;
  sim.reserve(8192);
  QueuePolicy qp;
  qp.capacity = 16;
  qp.discipline = QueueDiscipline::kDeadline;
  qp.sojourn_target = 2.0;
  Resource r(sim, 1, qp);
  Rng rng(11);
  double t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.exponential(0.5);
    const double s = rng.exponential(1.0);
    sim.schedule_at(t, [&r, s] { r.request(s, nullptr); });
  }
  const auto before = arch21::inline_function_heap_allocations();
  sim.run();
  EXPECT_EQ(arch21::inline_function_heap_allocations(), before);
  // Saturated with a 2.0 sojourn target over ~1.0 services: a 16-deep
  // backlog guarantees plenty of drops at dequeue.
  EXPECT_GT(r.expired(), 100u);
}

TEST(BoundedQueue, PolicyValidation) {
  QueuePolicy ok;
  EXPECT_NO_THROW(ok.validate());
  QueuePolicy deadline_no_target;
  deadline_no_target.discipline = QueueDiscipline::kDeadline;
  EXPECT_THROW(deadline_no_target.validate(), std::invalid_argument);
  deadline_no_target.sojourn_target = 3.0;
  EXPECT_NO_THROW(deadline_no_target.validate());
  QueuePolicy negative;
  negative.sojourn_target = -1.0;
  EXPECT_THROW(negative.validate(), std::invalid_argument);
  // The Resource constructor validates its policy.
  Simulator sim;
  QueuePolicy bad_ctor;
  bad_ctor.discipline = QueueDiscipline::kDeadline;
  EXPECT_THROW(Resource(sim, 1, bad_ctor), std::invalid_argument);
}

// --------------------------------------------------- policy validation

TEST(OverloadPolicies, AdmissionValidation) {
  cloud::AdmissionPolicy a;
  EXPECT_NO_THROW(a.validate());  // disabled: anything goes
  a.enabled = true;
  EXPECT_THROW(a.validate(), std::invalid_argument);  // no gate configured
  a.rate_qps = 100;
  EXPECT_NO_THROW(a.validate());
  a.burst = 0.5;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a.burst = 10;
  a.rate_qps = -1;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a.rate_qps = 0;
  a.max_in_flight = 32;
  EXPECT_NO_THROW(a.validate());
}

TEST(OverloadPolicies, BreakerValidation) {
  cloud::CircuitBreakerPolicy b;
  EXPECT_NO_THROW(b.validate());  // disabled
  b.enabled = true;
  EXPECT_NO_THROW(b.validate());  // defaults are coherent
  auto bad = b;
  bad.window = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = b;
  bad.window = 65;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = b;
  bad.failure_threshold = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = b;
  bad.failure_threshold = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = b;
  bad.min_samples = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = b;
  bad.min_samples = b.window + 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = b;
  bad.open_ms = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = b;
  bad.open_jitter_frac = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = b;
  bad.half_open_probes = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(OverloadPolicies, BreakerRequiresTimeout) {
  cloud::ResiliencePolicy p;
  p.breaker.enabled = true;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.retry.timeout_ms = 10;
  EXPECT_NO_THROW(p.validate());
}

TEST(OverloadPolicies, ClusterConfigValidatesBurstAndWindows) {
  ClusterConfig cfg;
  cfg.faults.burst_leaves = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // no duration
  cfg.faults.burst_duration_s = 1;
  EXPECT_NO_THROW(cfg.validate());
  cfg.faults.burst_leaves = cfg.leaves + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.faults.burst_leaves = 4;
  cfg.goodput_window_s = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.goodput_window_s = 0.5;
  cfg.leaf_queue.discipline = QueueDiscipline::kDeadline;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // no sojourn target
  cfg.leaf_queue.sojourn_target = 10;
  EXPECT_NO_THROW(cfg.validate());
}

// ------------------------------------------------- merge + hysteresis

TEST(ClusterResultMerge, SumsOverloadTelemetry) {
  ClusterResult a;
  a.trials = 1;
  a.shed_queries = 3;
  a.rejected_requests = 10;
  a.expired_drops = 4;
  a.breaker_open_transitions = 2;
  a.breaker_short_circuits = 7;
  a.breaker_probes = 5;
  a.breaker_open_ms = 12.5;
  a.answered_per_window = {1, 2};

  ClusterResult b;
  b.trials = 2;
  b.shed_queries = 5;
  b.rejected_requests = 1;
  b.expired_drops = 6;
  b.breaker_open_transitions = 1;
  b.breaker_short_circuits = 3;
  b.breaker_probes = 2;
  b.breaker_open_ms = 2.5;
  b.answered_per_window = {3, 4, 5};

  a.merge(b);
  EXPECT_EQ(a.trials, 3u);
  EXPECT_EQ(a.shed_queries, 8u);
  EXPECT_EQ(a.rejected_requests, 11u);
  EXPECT_EQ(a.expired_drops, 10u);
  EXPECT_EQ(a.breaker_open_transitions, 3u);
  EXPECT_EQ(a.breaker_short_circuits, 10u);
  EXPECT_EQ(a.breaker_probes, 7u);
  EXPECT_DOUBLE_EQ(a.breaker_open_ms, 15.0);
  EXPECT_EQ(a.answered_per_window, (std::vector<std::uint64_t>{4, 6, 5}));

  // Merging the shorter series into the longer must also work.
  ClusterResult c;
  c.trials = 1;
  c.answered_per_window = {10};
  a.merge(c);
  EXPECT_EQ(a.answered_per_window, (std::vector<std::uint64_t>{14, 6, 5}));
}

TEST(ClusterResultMerge, RejectsMismatchedGoodputWindows) {
  // Summing per-window counts recorded on different grids would corrupt
  // the hysteresis measurement, so merge() must refuse.
  ClusterResult a;
  a.goodput_window_s = 1.0;
  a.answered_per_window = {1, 2};
  ClusterResult b;
  b.goodput_window_s = 0.5;
  b.answered_per_window = {1, 2, 3, 4};
  EXPECT_THROW(a.merge(b), std::invalid_argument);

  // A windowless result adopts the other side's grid instead.
  ClusterResult c;  // goodput_window_s == 0: no series recorded
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.goodput_window_s, 1.0);
  ClusterResult d;
  d.goodput_window_s = 1.0;
  d.answered_per_window = {5};
  c.merge(d);  // matching grids still merge fine
  EXPECT_EQ(c.answered_per_window, (std::vector<std::uint64_t>{6, 2}));

  // The simulator stamps the config's window size into the result.
  ClusterConfig cfg;
  cfg.leaves = 2;
  cfg.query_rate_hz = 50;
  cfg.duration_s = 1;
  cfg.goodput_window_s = 0.25;
  const auto r = cloud::simulate_cluster(cfg);
  EXPECT_DOUBLE_EQ(r.goodput_window_s, 0.25);
}

TEST(GoodputHysteresis, WindowedPrePostMeans) {
  ClusterConfig cfg;
  cfg.goodput_window_s = 1.0;
  cfg.duration_s = 8;
  cfg.faults.burst_leaves = 2;
  cfg.faults.burst_start_s = 3;
  cfg.faults.burst_duration_s = 1;

  ClusterResult r;
  r.trials = 1;
  // Window 0 is warmup; 1-2 pre; 3-4 burst+settle; 5-7 post.
  r.answered_per_window = {99, 10, 10, 0, 0, 5, 5, 5};
  const auto h = cloud::goodput_hysteresis(r, cfg, 1.0);
  EXPECT_DOUBLE_EQ(h.pre_qps, 10.0);
  EXPECT_DOUBLE_EQ(h.post_qps, 5.0);
  EXPECT_DOUBLE_EQ(h.recovery_ratio(), 0.5);

  // Missing trailing windows are zeros -- the metastable signal itself.
  r.answered_per_window = {99, 10, 10};
  const auto h2 = cloud::goodput_hysteresis(r, cfg, 1.0);
  EXPECT_DOUBLE_EQ(h2.pre_qps, 10.0);
  EXPECT_DOUBLE_EQ(h2.post_qps, 0.0);

  // Two trials normalize per trial.
  r.trials = 2;
  r.answered_per_window = {0, 20, 20, 0, 0, 10, 10, 10};
  const auto h3 = cloud::goodput_hysteresis(r, cfg, 1.0);
  EXPECT_DOUBLE_EQ(h3.pre_qps, 10.0);
  EXPECT_DOUBLE_EQ(h3.post_qps, 5.0);

  // No burst or no windows -> zeros.
  ClusterConfig off = cfg;
  off.faults.burst_leaves = 0;
  const auto h4 = cloud::goodput_hysteresis(r, off, 1.0);
  EXPECT_DOUBLE_EQ(h4.pre_qps, 0.0);
  EXPECT_DOUBLE_EQ(h4.recovery_ratio(), 0.0);
}

// ------------------------------------------------- cluster integration

ClusterConfig overload_cluster() {
  ClusterConfig cfg;
  cfg.leaves = 10;
  cfg.query_rate_hz = 80;
  cfg.leaf_service_ms = 3;
  cfg.background_rate_hz = 20;
  cfg.background_ms = 2;
  cfg.duration_s = 6;
  cfg.seed = 99;
  cfg.goodput_window_s = 1.0;
  cfg.faults.burst_leaves = 6;
  cfg.faults.burst_start_s = 2;
  cfg.faults.burst_duration_s = 1;
  cfg.policy.retry.timeout_ms = 15;
  cfg.policy.retry.max_retries = 4;
  cfg.policy.quorum = {.quorum_fraction = 0.5, .deadline_ms = 60};
  return cfg;
}

TEST(ClusterOverload, DefaultsLeaveNewTelemetryZero) {
  ClusterConfig cfg;
  cfg.leaves = 10;
  cfg.query_rate_hz = 40;
  cfg.duration_s = 3;
  cfg.seed = 5;
  const auto r = cloud::simulate_cluster(cfg);
  EXPECT_EQ(r.shed_queries, 0u);
  EXPECT_EQ(r.rejected_requests, 0u);
  EXPECT_EQ(r.expired_drops, 0u);
  EXPECT_EQ(r.breaker_open_transitions, 0u);
  EXPECT_EQ(r.breaker_short_circuits, 0u);
  EXPECT_EQ(r.breaker_probes, 0u);
  EXPECT_DOUBLE_EQ(r.breaker_open_ms, 0.0);
  EXPECT_TRUE(r.answered_per_window.empty());
}

TEST(ClusterOverload, BurstCrashesLeavesThenRecovers) {
  const auto cfg = overload_cluster();
  const auto r = cloud::simulate_cluster(cfg);
  EXPECT_EQ(r.leaf_failures, 6u);
  EXPECT_GT(r.lost_requests, 0u);  // fail_all() killed queued/in-service work
  ASSERT_GE(r.answered_per_window.size(), 6u);
  // The burst window answers less than the healthy window before it, and
  // goodput comes back by the final window (this config is NOT in the
  // metastable regime -- 0.28 rho with bounded retries).
  EXPECT_LT(r.answered_per_window[2], r.answered_per_window[1]);
  EXPECT_GT(r.answered_per_window[5],
            static_cast<std::uint64_t>(0.5 * cfg.query_rate_hz));
}

TEST(ClusterOverload, BoundedLeafQueueRejectsAndExpires) {
  auto cfg = overload_cluster();
  // Saturate outright so the bounded queue is exercised hard: ~1.2 rho
  // of query work alone.
  cfg.query_rate_hz = 400;
  cfg.duration_s = 3;
  cfg.faults.burst_leaves = 0;
  cfg.faults.burst_duration_s = 0;
  cfg.leaf_queue.capacity = 8;
  cfg.leaf_queue.discipline = QueueDiscipline::kDeadline;
  cfg.leaf_queue.sojourn_target = 6;  // < capacity x service: drops happen
  const auto r = cloud::simulate_cluster(cfg);
  EXPECT_GT(r.rejected_requests, 100u);
  EXPECT_GT(r.expired_drops, 100u);
  // Unbounded comparison: same workload, no rejections.
  auto unbounded = cfg;
  unbounded.leaf_queue = {};
  const auto u = cloud::simulate_cluster(unbounded);
  EXPECT_EQ(u.rejected_requests, 0u);
  EXPECT_EQ(u.expired_drops, 0u);
  // The bounded cluster answers more queries inside the deadline: served
  // work is fresh instead of stale.
  EXPECT_GT(r.ok_queries + r.degraded_queries,
            u.ok_queries + u.degraded_queries);
}

TEST(ClusterOverload, AdmissionShedsExactlyTheExcess) {
  auto cfg = overload_cluster();
  const auto open = cloud::simulate_cluster(cfg);

  auto gated = cfg;
  gated.policy.admission.enabled = true;
  gated.policy.admission.rate_qps = 40;  // arrivals ~80 qps: shed ~half
  gated.policy.admission.burst = 5;
  const auto g = cloud::simulate_cluster(gated);
  EXPECT_GT(g.shed_queries, 0u);
  // Workload draws are aligned: admitted + shed = the open run's arrivals.
  EXPECT_EQ(g.queries + g.shed_queries, open.queries);
  EXPECT_LT(g.queries, open.queries);

  // The concurrency gate alone also sheds under the burst backlog.
  auto capped = cfg;
  capped.policy.admission.enabled = true;
  capped.policy.admission.max_in_flight = 3;
  const auto c = cloud::simulate_cluster(capped);
  EXPECT_GT(c.shed_queries, 0u);
  EXPECT_EQ(c.queries + c.shed_queries, open.queries);
}

TEST(ClusterOverload, BreakerOpensOnDeadReplicasAndReCloses) {
  auto cfg = overload_cluster();
  cfg.policy.breaker.enabled = true;
  cfg.policy.breaker.window = 8;
  cfg.policy.breaker.min_samples = 4;
  cfg.policy.breaker.failure_threshold = 0.5;
  cfg.policy.breaker.open_ms = 30;
  const auto r = cloud::simulate_cluster(cfg);
  // Six leaves dead for a second under a 15 ms timeout: breakers trip,
  // short-circuit sends, probe after cooldown, and accumulate open time.
  EXPECT_GT(r.breaker_open_transitions, 0u);
  EXPECT_GT(r.breaker_short_circuits, 0u);
  EXPECT_GT(r.breaker_probes, 0u);
  EXPECT_GT(r.breaker_open_ms, 0.0);
  // With the breaker steering sends away from dead leaves, fewer
  // requests vanish into them.
  const auto bare = cloud::simulate_cluster(overload_cluster());
  EXPECT_LT(r.lost_requests, bare.lost_requests);
}

TEST(ClusterOverload, FullProtectionDeterministicAcrossPools) {
  auto cfg = overload_cluster();
  cfg.leaf_queue.capacity = 4;
  cfg.leaf_queue.discipline = QueueDiscipline::kDeadline;
  cfg.leaf_queue.sojourn_target = 15;
  cfg.policy.budget.enabled = true;
  cfg.policy.admission.enabled = true;
  cfg.policy.admission.rate_qps = 90;
  cfg.policy.admission.max_in_flight = 20;
  cfg.policy.breaker.enabled = true;

  ThreadPool p1(1), p2(2);
  const auto a = cloud::run_cluster_trials(cfg, 4, &p1);
  const auto b = cloud::run_cluster_trials(cfg, 4, &p2);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.shed_queries, b.shed_queries);
  EXPECT_EQ(a.rejected_requests, b.rejected_requests);
  EXPECT_EQ(a.expired_drops, b.expired_drops);
  EXPECT_EQ(a.breaker_open_transitions, b.breaker_open_transitions);
  EXPECT_EQ(a.breaker_short_circuits, b.breaker_short_circuits);
  EXPECT_EQ(a.breaker_probes, b.breaker_probes);
  EXPECT_DOUBLE_EQ(a.breaker_open_ms, b.breaker_open_ms);
  EXPECT_EQ(a.answered_per_window, b.answered_per_window);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_DOUBLE_EQ(a.sum_result_quality, b.sum_result_quality);
  EXPECT_DOUBLE_EQ(a.query_ms.quantile(0.99), b.query_ms.quantile(0.99));
}

TEST(ClusterOverload, ScenarioLadderShape) {
  auto cfg = overload_cluster();
  cfg.duration_s = 4;
  cfg.policy = {};  // overload_scenarios installs the client policy
  ThreadPool p1(1);
  const auto ladder = cloud::overload_scenarios(cfg, 1, {}, &p1);
  ASSERT_EQ(ladder.size(), 4u);
  EXPECT_NE(ladder[0].name.find("unprotected"), std::string::npos);
  // Rung 1 has no server-side protection at all.
  EXPECT_EQ(ladder[0].result.rejected_requests, 0u);
  EXPECT_EQ(ladder[0].result.shed_queries, 0u);
  EXPECT_EQ(ladder[0].result.breaker_open_transitions, 0u);
  // Rung 2 bounds the queues; rung 4 runs breakers.
  EXPECT_EQ(ladder[1].config.leaf_queue.capacity, 4u);
  EXPECT_TRUE(ladder[3].config.policy.breaker.enabled);
  EXPECT_TRUE(ladder[3].config.policy.admission.enabled);
  // Every rung saw the identical workload.
  const auto arrivals =
      ladder[0].result.queries + ladder[0].result.shed_queries;
  for (const auto& s : ladder) {
    EXPECT_EQ(s.result.queries + s.result.shed_queries, arrivals) << s.name;
  }
}

#if ARCH21_OBS_ENABLED
TEST(ClusterOverload, ObservabilityDoesNotPerturbOverloadTelemetry) {
  auto cfg = overload_cluster();
  cfg.duration_s = 3;
  cfg.leaf_queue.capacity = 4;
  cfg.leaf_queue.discipline = QueueDiscipline::kDeadline;
  cfg.leaf_queue.sojourn_target = 15;
  cfg.policy.admission.enabled = true;
  cfg.policy.admission.rate_qps = 60;
  cfg.policy.breaker.enabled = true;
  const auto plain = cloud::simulate_cluster(cfg);

  auto& m = obs::MetricsRegistry::global();
  m.set_enabled(true);
  auto traced_cfg = cfg;
  obs::TraceBuffer trace(std::size_t{1} << 18, 1e3);
  traced_cfg.trace = &trace;
  const auto traced = cloud::simulate_cluster(traced_cfg);
  m.set_enabled(false);

  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(plain.queries, traced.queries);
  EXPECT_EQ(plain.shed_queries, traced.shed_queries);
  EXPECT_EQ(plain.rejected_requests, traced.rejected_requests);
  EXPECT_EQ(plain.expired_drops, traced.expired_drops);
  EXPECT_EQ(plain.breaker_open_transitions, traced.breaker_open_transitions);
  EXPECT_EQ(plain.breaker_short_circuits, traced.breaker_short_circuits);
  EXPECT_DOUBLE_EQ(plain.breaker_open_ms, traced.breaker_open_ms);
  EXPECT_EQ(plain.answered_per_window, traced.answered_per_window);
  EXPECT_DOUBLE_EQ(plain.sum_result_quality, traced.sum_result_quality);
}
#endif  // ARCH21_OBS_ENABLED

}  // namespace
}  // namespace arch21
