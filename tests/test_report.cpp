// Tests for the DSE report generator.

#include <gtest/gtest.h>

#include "core/report.hpp"

namespace arch21::core {
namespace {

DesignSpace small_space() {
  DesignSpace s;
  s.nodes = {"22nm"};
  s.vdd_scales = {0.7, 1.0};
  s.core_counts = {4, 16};
  s.bces = {1, 4};
  s.accel_areas = {0.0, 0.25};
  s.llc_mibs = {8};
  s.stacking = {false};
  return s;
}

TEST(Report, ContainsAllSections) {
  const auto res = grid_search(small_space(), profile_mobile_vision(),
                               PlatformClass::Portable);
  const auto md = render_report(res, profile_mobile_vision(),
                                PlatformClass::Portable);
  EXPECT_NE(md.find("# Design-space exploration report"), std::string::npos);
  EXPECT_NE(md.find("## Recommendations"), std::string::npos);
  EXPECT_NE(md.find("## Pareto frontier"), std::string::npos);
  EXPECT_NE(md.find("## Power breakdown"), std::string::npos);
  EXPECT_NE(md.find("mobile-vision"), std::string::npos);
  EXPECT_NE(md.find("portable"), std::string::npos);
  EXPECT_NE(md.find("max throughput"), std::string::npos);
  EXPECT_NE(md.find("ladder verdict"), std::string::npos);
}

TEST(Report, StatesSearchVolume) {
  const auto space = small_space();
  const auto res =
      grid_search(space, profile_mobile_vision(), PlatformClass::Portable);
  const auto md = render_report(res, profile_mobile_vision(),
                                PlatformClass::Portable);
  EXPECT_NE(md.find("searched " + std::to_string(space.cardinality())),
            std::string::npos);
}

TEST(Report, HandlesEmptyFrontier) {
  // A space of leaky monsters at the sensor rung: nothing is feasible.
  DesignSpace s = small_space();
  s.vdd_scales = {1.0};
  s.core_counts = {128};
  s.bces = {16};
  const auto res =
      grid_search(s, profile_health_monitor(), PlatformClass::Sensor);
  EXPECT_EQ(res.feasible, 0u);
  const auto md =
      render_report(res, profile_health_monitor(), PlatformClass::Sensor);
  EXPECT_NE(md.find("No feasible design"), std::string::npos);
  // No dangling sections after the early return.
  EXPECT_EQ(md.find("## Pareto frontier"), std::string::npos);
}

TEST(Report, FrontierRowsMatchResult) {
  const auto res = grid_search(small_space(), profile_mobile_vision(),
                               PlatformClass::Portable);
  const auto md = render_report(res, profile_mobile_vision(),
                                PlatformClass::Portable);
  // Every frontier design's string appears in the report.
  for (const auto& p : res.frontier.points()) {
    EXPECT_NE(md.find(p.design.to_string()), std::string::npos);
  }
}

}  // namespace
}  // namespace arch21::core
