// Tests for the schedulers: correctness bounds (critical path <= makespan
// <= serial time), communication accounting, determinism, and the
// relationship between list scheduling and work stealing.

#include <gtest/gtest.h>

#include "par/schedule.hpp"
#include "par/taskgraph.hpp"

namespace arch21::par {
namespace {

constexpr double kOps = 1e9;  // 1 Gop/s cores
constexpr double kJop = 1e-12;

CommModel free_comm() { return CommModel::uniform(0.0, 0.0); }

TEST(ListSchedule, SingleTask) {
  TaskGraph g;
  g.add(1e9);
  const auto r = list_schedule(g, CoreModel::homogeneous(4, kOps, kJop),
                               free_comm());
  EXPECT_NEAR(r.makespan_s, 1.0, 1e-9);
  EXPECT_NEAR(r.compute_energy_j, 1e9 * kJop, 1e-15);
  EXPECT_EQ(r.comm_bytes, 0.0);
}

TEST(ListSchedule, ChainIsSerial) {
  TaskGraph g;
  TaskId prev = g.add(1e8);
  for (int i = 0; i < 9; ++i) {
    const TaskId next = g.add(1e8);
    g.add_edge(prev, next);
    prev = next;
  }
  const auto r = list_schedule(g, CoreModel::homogeneous(8, kOps, kJop),
                               free_comm());
  EXPECT_NEAR(r.makespan_s, 1.0, 1e-9);  // no parallelism available
}

TEST(ListSchedule, IndependentTasksSpread) {
  TaskGraph g;
  for (int i = 0; i < 16; ++i) g.add(1e8);
  const auto r = list_schedule(g, CoreModel::homogeneous(4, kOps, kJop),
                               free_comm());
  EXPECT_NEAR(r.makespan_s, 0.4, 1e-9);  // 16 tasks / 4 cores
  EXPECT_NEAR(r.utilization(), 1.0, 1e-9);
}

TEST(ListSchedule, MakespanBounds) {
  const auto g = make_layered(6, 8, 3, 1e7, 1024, 5);
  const auto cores = CoreModel::homogeneous(4, kOps, kJop);
  const auto r = list_schedule(g, cores, free_comm());
  const double cp_time = g.critical_path() / kOps;
  const double serial_time = g.total_work() / kOps;
  EXPECT_GE(r.makespan_s, cp_time - 1e-12);
  EXPECT_LE(r.makespan_s, serial_time + 1e-12);
  // Greedy bound: makespan <= work/P + critical path.
  EXPECT_LE(r.makespan_s, serial_time / 4 + cp_time + 1e-9);
}

TEST(ListSchedule, CommunicationChangesPlacement) {
  // Chain with heavy data: with expensive comm, both tasks co-locate.
  TaskGraph g;
  const auto a = g.add(1e8, 1e9);  // 1 GB output
  const auto b = g.add(1e8);
  g.add_edge(a, b);
  const auto cores = CoreModel::homogeneous(4, kOps, kJop);
  const auto pricey = CommModel::uniform(1e-6, 1e-9);  // 1 us and 1 nJ per byte
  const auto r = list_schedule(g, cores, pricey);
  EXPECT_EQ(r.placement[a], r.placement[b]);
  EXPECT_EQ(r.comm_bytes, 0.0);
  EXPECT_EQ(r.comm_energy_j, 0.0);
}

TEST(ListSchedule, CrossCoreEdgesAreCharged) {
  // Two independent producers feeding one consumer: at least one edge
  // must cross cores when producers run in parallel.
  TaskGraph g;
  const auto a = g.add(1e8, 1000);
  const auto b = g.add(1e8, 1000);
  const auto c = g.add(1e8);
  g.add_edge(a, c);
  g.add_edge(b, c);
  const auto comm = CommModel::uniform(1e-12, 2e-9);
  const auto r = list_schedule(g, CoreModel::homogeneous(4, kOps, kJop), comm);
  EXPECT_GE(r.comm_bytes, 1000.0);
  EXPECT_NEAR(r.comm_energy_j, r.comm_bytes * 2e-9, 1e-12);
}

TEST(WorkStealing, CompletesAllTasksAndRespectsBounds) {
  const auto g = make_layered(5, 16, 2, 1e7, 256, 11);
  const auto cores = CoreModel::homogeneous(8, kOps, kJop);
  const auto r = work_stealing_schedule(g, cores, free_comm(), 1e-7, 42);
  const double cp_time = g.critical_path() / kOps;
  EXPECT_GE(r.makespan_s, cp_time - 1e-12);
  // All compute energy accounted.
  EXPECT_NEAR(r.compute_energy_j, g.total_work() * kJop, 1e-9);
}

TEST(WorkStealing, DeterministicForSeed) {
  const auto g = make_layered(4, 12, 2, 1e7, 128, 3);
  const auto cores = CoreModel::homogeneous(4, kOps, kJop);
  const auto a = work_stealing_schedule(g, cores, free_comm(), 1e-7, 9);
  const auto b = work_stealing_schedule(g, cores, free_comm(), 1e-7, 9);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.placement, b.placement);
}

TEST(WorkStealing, ScalesDownWithMoreCores) {
  const auto g = make_fork_join(64, 1e8, 64);
  auto run = [&](std::uint32_t p) {
    return work_stealing_schedule(g, CoreModel::homogeneous(p, kOps, kJop),
                                  free_comm(), 1e-7, 5)
        .makespan_s;
  };
  const double t1 = run(1);
  const double t4 = run(4);
  const double t16 = run(16);
  EXPECT_GT(t1 / t4, 2.5);
  EXPECT_GT(t4 / t16, 2.0);
}

TEST(WorkStealing, StealLatencySlowsSmallTasks) {
  const auto g = make_fork_join(64, 1e5, 0);  // tiny tasks
  const auto cores = CoreModel::homogeneous(8, kOps, kJop);
  const auto cheap = work_stealing_schedule(g, cores, free_comm(), 1e-9, 7);
  const auto dear = work_stealing_schedule(g, cores, free_comm(), 1e-4, 7);
  EXPECT_GT(dear.makespan_s, cheap.makespan_s);
}

TEST(WorkStealing, SingleCoreEqualsSerial) {
  const auto g = make_layered(3, 5, 2, 1e7, 64, 2);
  const auto r = work_stealing_schedule(
      g, CoreModel::homogeneous(1, kOps, kJop), free_comm(), 1e-7, 1);
  EXPECT_NEAR(r.makespan_s, g.total_work() / kOps, 1e-6);
}

TEST(Schedulers, ListBeatsOrMatchesStealingOnStaticGraphs) {
  // With full knowledge, HEFT-style list scheduling should not lose badly
  // to randomized stealing on a static DAG.
  const auto g = make_layered(6, 10, 3, 1e7, 512, 8);
  const auto cores = CoreModel::homogeneous(4, kOps, kJop);
  const auto ls = list_schedule(g, cores, free_comm());
  const auto ws = work_stealing_schedule(g, cores, free_comm(), 1e-7, 3);
  EXPECT_LE(ls.makespan_s, ws.makespan_s * 1.1);
}

TEST(CoreModel, Validation) {
  EXPECT_THROW(CoreModel::homogeneous(0, 1e9, 1e-12), std::invalid_argument);
  EXPECT_THROW(CoreModel::homogeneous(4, 0, 1e-12), std::invalid_argument);
}

TEST(ScheduleResult, UtilizationBounded) {
  const auto g = make_fork_join(10, 1e8, 0);
  const auto r = list_schedule(g, CoreModel::homogeneous(4, kOps, kJop),
                               free_comm());
  EXPECT_GT(r.utilization(), 0.0);
  EXPECT_LE(r.utilization(), 1.0 + 1e-12);
}

}  // namespace
}  // namespace arch21::par
