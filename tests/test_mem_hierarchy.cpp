// Tests for the multi-level hierarchy: service-level attribution, AMAT
// and energy accounting, and the locality sensitivity that drives the
// fetch-energy experiment.

#include <gtest/gtest.h>

#include "energy/catalogue.hpp"
#include "mem/hierarchy.hpp"
#include "util/rng.hpp"

namespace arch21::mem {
namespace {

class HierarchyTest : public ::testing::Test {
 protected:
  energy::Catalogue cat;  // 45nm reference
  CacheConfig l1{.size_bytes = 4096, .line_bytes = 64, .ways = 4};
  CacheConfig l2{.size_bytes = 32768, .line_bytes = 64, .ways = 8};
  CacheConfig llc{.size_bytes = 262144, .line_bytes = 64, .ways = 16};
};

TEST_F(HierarchyTest, ColdAccessGoesToDram) {
  Hierarchy h(l1, l2, llc, cat);
  EXPECT_EQ(h.access(0x10000, false), ServiceLevel::Dram);
  EXPECT_EQ(h.stats().serviced_at[3], 1u);
}

TEST_F(HierarchyTest, SecondAccessHitsL1) {
  Hierarchy h(l1, l2, llc, cat);
  h.access(0x10000, false);
  EXPECT_EQ(h.access(0x10000, false), ServiceLevel::L1);
  EXPECT_EQ(h.access(0x10008, false), ServiceLevel::L1);  // same line
}

TEST_F(HierarchyTest, L1VictimStillInL2) {
  Hierarchy h(l1, l2, llc, cat);
  // Touch enough distinct lines to overflow L1 (64 lines) but not L2.
  for (Addr a = 0; a < 4096 * 4; a += 64) h.access(a, false);
  // Line 0 was evicted from L1 but should be served by L2.
  const auto lvl = h.access(0, false);
  EXPECT_EQ(lvl, ServiceLevel::L2);
}

TEST_F(HierarchyTest, AmatBetweenL1AndDramLatency) {
  Hierarchy h(l1, l2, llc, cat);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    h.access(rng.below(1 << 22), false);
  }
  const double amat = h.stats().amat_cycles();
  HierarchyLatency lat;
  EXPECT_GE(amat, static_cast<double>(lat.l1));
  EXPECT_LE(amat,
            static_cast<double>(lat.l1 + lat.l2 + lat.llc + lat.dram));
}

TEST_F(HierarchyTest, SequentialBeatsRandomOnEnergy) {
  Hierarchy seq(l1, l2, llc, cat);
  Hierarchy rnd(l1, l2, llc, cat);
  Rng rng(4);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    seq.access(static_cast<Addr>(i) * 8 % (1 << 18), false);  // streaming
    rnd.access(rng.below(1 << 26), false);                    // random
  }
  EXPECT_LT(seq.stats().energy_per_access(), rnd.stats().energy_per_access());
  EXPECT_LT(seq.stats().amat_cycles(), rnd.stats().amat_cycles());
}

TEST_F(HierarchyTest, EnergyPerAccessBracketedByLevels) {
  Hierarchy h(l1, l2, llc, cat);
  for (int i = 0; i < 1000; ++i) h.access(0x40, false);
  // Nearly all L1 hits: energy/access close to the L1 access energy.
  EXPECT_LT(h.stats().energy_per_access(),
            2.0 * cat.access(energy::Level::L1));
  EXPECT_GE(h.stats().energy_per_access(), cat.access(energy::Level::L1));
}

TEST_F(HierarchyTest, FetchToComputeRatioMatchesPaperClaim) {
  // E6 core assertion: operand fetch from LLC/DRAM costs one to two
  // orders of magnitude more than the FMA itself.
  EXPECT_GT(cat.fetch_to_compute_ratio(energy::Level::Dram), 10.0);
  EXPECT_LT(cat.fetch_to_compute_ratio(energy::Level::Dram), 200.0);
  EXPECT_GT(cat.fetch_to_compute_ratio(energy::Level::LLC), 10.0);
  EXPECT_LT(cat.fetch_to_compute_ratio(energy::Level::RegisterFile), 1.0);
}

TEST_F(HierarchyTest, ResetStatsClearsEverything) {
  Hierarchy h(l1, l2, llc, cat);
  h.access(0x1234, true);
  h.reset_stats();
  EXPECT_EQ(h.stats().accesses, 0u);
  EXPECT_EQ(h.l1().stats().accesses, 0u);
  EXPECT_EQ(h.stats().total_energy_j, 0.0);
}

TEST_F(HierarchyTest, WritebackTrafficCounted) {
  Hierarchy h(l1, l2, llc, cat);
  // Dirty many lines, then stream far past every capacity so the dirty
  // lines eventually wash out of the LLC.
  for (Addr a = 0; a < 262144; a += 64) h.access(a, true);
  for (Addr a = 1 << 22; a < (1 << 22) + 2 * 262144; a += 64) {
    h.access(a, false);
  }
  EXPECT_GT(h.stats().writebacks_to_dram, 0u);
}

TEST(HierarchyEnergy, NewerNodeCheaper) {
  const energy::Catalogue c45(*tech::find_node("45nm"));
  const energy::Catalogue c22(*tech::find_node("22nm"));
  EXPECT_LT(c22.fp_fma(), c45.fp_fma());
  EXPECT_LT(c22.access(energy::Level::L1), c45.access(energy::Level::L1));
  // DRAM improves more slowly (I/O-bound): ratio closer to 1.
  const double logic_ratio = c22.fp_fma() / c45.fp_fma();
  const double dram_ratio =
      c22.access(energy::Level::Dram) / c45.access(energy::Level::Dram);
  EXPECT_GT(dram_ratio, logic_ratio);
}

TEST(HierarchyEnergy, LevelsOrderedByEnergy) {
  const energy::Catalogue cat;
  using energy::Level;
  EXPECT_LT(cat.access(Level::RegisterFile), cat.access(Level::L1));
  EXPECT_LT(cat.access(Level::L1), cat.access(Level::L2));
  EXPECT_LT(cat.access(Level::L2), cat.access(Level::LLC));
  EXPECT_LT(cat.access(Level::LLC), cat.access(Level::Dram));
}

}  // namespace
}  // namespace arch21::mem
