// Tests for queueing theory (Erlang-C vs DES), the cluster simulator
// with queueing interference and hedging, and warehouse power modeling.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "cloud/cluster.hpp"
#include "cloud/power.hpp"
#include "cloud/qos.hpp"
#include "cloud/queueing.hpp"

namespace arch21::cloud {
namespace {

TEST(Mmk, SingleServerReducesToMm1) {
  // M/M/1: p_wait = rho, E[T] = 1/(mu - lambda).
  const auto r = mmk(0.5, 1.0, 1);
  EXPECT_TRUE(r.stable);
  EXPECT_NEAR(r.rho, 0.5, 1e-12);
  EXPECT_NEAR(r.p_wait, 0.5, 1e-9);
  EXPECT_NEAR(r.mean_sojourn, 2.0, 1e-9);
}

TEST(Mmk, UnstableWhenOverloaded) {
  const auto r = mmk(3.0, 1.0, 2);
  EXPECT_FALSE(r.stable);
  EXPECT_TRUE(std::isinf(r.mean_wait));
  EXPECT_EQ(r.p_wait, 1.0);
}

TEST(Mmk, PoolingBeatsPartitioning) {
  // One fast queue vs k slow queues: M/M/k at the same total capacity has
  // less waiting than M/M/1 per partition.
  const auto pooled = mmk(8.0, 1.0, 10);
  const auto partition = mmk(0.8, 1.0, 1);
  EXPECT_LT(pooled.mean_wait, partition.mean_wait);
}

TEST(Mmk, WaitExplodesNearSaturation) {
  const double near = mmk(0.95, 1.0, 1).mean_wait;
  const double far = mmk(0.5, 1.0, 1).mean_wait;
  EXPECT_GT(near / far, 10.0);
}

TEST(Mmk, ParameterValidation) {
  EXPECT_THROW(mmk(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(mmk(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(mmk(1, 1, 0), std::invalid_argument);
}

TEST(Mmk, DesMatchesErlangC) {
  for (unsigned k : {1u, 4u}) {
    const double lambda = 0.7 * k;
    const auto analytic = mmk(lambda, 1.0, k);
    const double sim = simulate_mmk_sojourn(lambda, 1.0, k, 80000, 5);
    EXPECT_NEAR(sim / analytic.mean_sojourn, 1.0, 0.08) << "k=" << k;
  }
}

TEST(Cluster, RunsAndCollectsQueries) {
  ClusterConfig cfg;
  cfg.leaves = 20;
  cfg.duration_s = 5;
  cfg.query_rate_hz = 40;
  const auto r = simulate_cluster(cfg);
  EXPECT_GT(r.queries, 100u);
  EXPECT_GT(r.query_ms.count(), 0u);
  EXPECT_GT(r.mean_leaf_utilization, 0.05);
  EXPECT_LT(r.mean_leaf_utilization, 1.0);
  // Fan-out max >= individual leaf latencies.
  EXPECT_GE(r.query_ms.quantile(0.5), r.leaf_ms.quantile(0.5));
}

TEST(Cluster, QueueingInflatesTailBeyondServiceTime) {
  ClusterConfig cfg;
  cfg.leaves = 30;
  cfg.duration_s = 8;
  cfg.query_rate_hz = 60;
  cfg.background_rate_hz = 100;  // heavy interference
  cfg.background_ms = 5;
  const auto r = simulate_cluster(cfg);
  // p99 of the fan-out query far exceeds the mean service time.
  EXPECT_GT(r.query_ms.quantile(0.99), cfg.leaf_service_ms * 4);
}

TEST(Cluster, HedgingCutsTailUnderInterference) {
  ClusterConfig cfg;
  cfg.leaves = 30;
  cfg.duration_s = 8;
  cfg.query_rate_hz = 30;
  cfg.background_rate_hz = 60;
  cfg.background_ms = 6;
  const auto base = simulate_cluster(cfg);
  cfg.hedge_after_ms = 20;
  const auto hedged = simulate_cluster(cfg);
  EXPECT_LT(hedged.query_ms.quantile(0.99),
            base.query_ms.quantile(0.99) * 0.9);
  EXPECT_GT(hedged.hedge_fraction, 0.0);
  EXPECT_LT(hedged.hedge_fraction, 0.5);
}

TEST(Cluster, ValidationRejectsBadConfigByName) {
  ClusterConfig cfg;
  cfg.leaves = 0;
  try {
    simulate_cluster(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ClusterConfig"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("leaves"), std::string::npos);
  }
  cfg = {};
  cfg.query_rate_hz = 0;
  EXPECT_THROW(simulate_cluster(cfg), std::invalid_argument);
  cfg = {};
  cfg.leaf_service_ms = -1;
  EXPECT_THROW(simulate_cluster(cfg), std::invalid_argument);
  cfg = {};
  cfg.background_rate_hz = -5;
  EXPECT_THROW(simulate_cluster(cfg), std::invalid_argument);
  cfg = {};
  cfg.duration_s = 0;
  EXPECT_THROW(simulate_cluster(cfg), std::invalid_argument);
  cfg = {};
  cfg.hedge_after_ms = -1;
  EXPECT_THROW(simulate_cluster(cfg), std::invalid_argument);
  // Nested fault / policy structs are validated through the top level.
  cfg = {};
  cfg.faults.enabled = true;
  cfg.faults.leaf.mtbf_hours = 0;
  EXPECT_THROW(simulate_cluster(cfg), std::invalid_argument);
  cfg = {};
  cfg.faults.enabled = true;
  cfg.faults.leaves_per_domain = 7;
  cfg.faults.domain.mttr_hours = -1;
  EXPECT_THROW(simulate_cluster(cfg), std::invalid_argument);
  cfg = {};
  cfg.policy.retry.timeout_ms = -2;
  EXPECT_THROW(simulate_cluster(cfg), std::invalid_argument);
  // Disabled faults skip fault-field validation (cheap configs stay valid).
  cfg = {};
  cfg.faults.enabled = false;
  cfg.faults.leaf.mtbf_hours = 0;
  cfg.duration_s = 0.5;
  EXPECT_NO_THROW(simulate_cluster(cfg));
}

TEST(Cluster, DeterministicForSeed) {
  ClusterConfig cfg;
  cfg.leaves = 10;
  cfg.duration_s = 3;
  const auto a = simulate_cluster(cfg);
  const auto b = simulate_cluster(cfg);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_DOUBLE_EQ(a.query_ms.quantile(0.9), b.query_ms.quantile(0.9));
}

TEST(ServerPower, LinearModel) {
  ServerPower s;
  EXPECT_DOUBLE_EQ(s.power(0), s.idle_w);
  EXPECT_DOUBLE_EQ(s.power(1), s.peak_w);
  EXPECT_DOUBLE_EQ(s.power(0.5), (s.idle_w + s.peak_w) / 2);
  EXPECT_NEAR(s.proportionality(), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(s.power(2.0), s.peak_w);  // clamped
}

TEST(Facility, PowerAndEfficiency) {
  Facility f;
  f.servers = 1000;
  f.pue = 1.5;
  EXPECT_DOUBLE_EQ(f.power(1.0), 1000 * 300.0 * 1.5);
  EXPECT_DOUBLE_EQ(f.throughput(1.0), 1000 * 1e11);
  // Low utilization murders facility efficiency (idle floor + PUE).
  EXPECT_GT(f.ops_per_joule(0.9), 3.0 * f.ops_per_joule(0.1));
}

TEST(Qos, SweepIncludesBothUtilizationEndpoints) {
  // steps = i/(steps-1): the sweep must pin its first row at BE = 0
  // (idle colocation -- the unloaded LC baseline) and its last at
  // BE = 1 (a fully busy batch neighbor), not stop one step short.
  const QosConfig cfg;
  const auto shared = colocation_sweep(cfg, /*partitioned=*/false, 11);
  ASSERT_EQ(shared.size(), 11u);
  EXPECT_DOUBLE_EQ(shared.front().be_utilization, 0.0);
  EXPECT_DOUBLE_EQ(shared.back().be_utilization, 1.0);

  // BE = 0: no interference in either mode, so both sweeps start from
  // the same unloaded M/M/1 p99, zero BE goodput, and LC-only machine
  // utilization.
  const auto part = colocation_sweep(cfg, /*partitioned=*/true, 11);
  EXPECT_DOUBLE_EQ(shared.front().lc_p99_ms, part.front().lc_p99_ms);
  EXPECT_DOUBLE_EQ(shared.front().be_goodput, 0.0);
  EXPECT_DOUBLE_EQ(shared.front().machine_utilization,
                   cfg.lc_rate_hz * cfg.lc_service_ms * 1e-3);
  EXPECT_TRUE(shared.front().slo_met);

  // BE = 1 shared: interference inflates service past the M/M/1
  // stability bound, so the tail is infinite and the SLO is lost --
  // while the partitioned row at BE = 1 stays finite.
  EXPECT_TRUE(std::isinf(shared.back().lc_p99_ms));
  EXPECT_FALSE(shared.back().slo_met);
  EXPECT_DOUBLE_EQ(shared.back().machine_utilization, 1.0);
  EXPECT_TRUE(std::isfinite(part.back().lc_p99_ms));
  // Partitioned BE pays the partition penalty in goodput.
  EXPECT_DOUBLE_EQ(part.back().be_goodput, 1.0 - cfg.be_partition_penalty);
}

TEST(Qos, SloExactlyAtP99CountsAsMet) {
  // slo_met is `p99 <= slo`: an objective met with zero margin is still
  // met.  Pin the SLO to the exact computed p99 (a pure function of the
  // config, so bitwise-reproducible) and check the boundary both ways.
  QosConfig cfg;
  const auto base = colocation_sweep(cfg, false, 2);
  ASSERT_TRUE(std::isfinite(base.front().lc_p99_ms));
  cfg.slo_p99_ms = base.front().lc_p99_ms;
  const auto exact = colocation_sweep(cfg, false, 2);
  EXPECT_DOUBLE_EQ(exact.front().lc_p99_ms, cfg.slo_p99_ms);
  EXPECT_TRUE(exact.front().slo_met);
  // One ulp-scale tightening of the SLO flips the verdict.
  cfg.slo_p99_ms = std::nextafter(cfg.slo_p99_ms, 0.0);
  const auto tight = colocation_sweep(cfg, false, 2);
  EXPECT_FALSE(tight.front().slo_met);
}

TEST(Qos, MaxSafeBeUtilizationBoundaries) {
  const QosConfig cfg;
  // Shared mode with the default coefficients tops out early (the
  // closed form gives be <= ~0.065 -> 0.06 on the 0.01 grid)...
  const double shared = max_safe_be_utilization(cfg, false);
  EXPECT_NEAR(shared, 0.06, 1e-9);
  // ...while partitioning admits the entire BE range (p99 at BE = 1 is
  // ~9.8 ms against the 10 ms SLO), hitting the sweep's upper endpoint.
  const double part = max_safe_be_utilization(cfg, true);
  EXPECT_NEAR(part, 1.0, 1e-9);

  // An SLO below even the unloaded p99 admits no BE at all.
  QosConfig strict = cfg;
  strict.slo_p99_ms = 1.0;
  EXPECT_DOUBLE_EQ(max_safe_be_utilization(strict, true), 0.0);
}

TEST(Facility, SizingForExaop) {
  // How big is an exa-op facility with ~2012 servers?  Far beyond 10 MW
  // -- exactly the gap the paper's ladder highlights.
  const auto s = Facility::size_for(ServerPower{}, 1.5, 1e18, 0.8);
  EXPECT_GT(s.servers, 1'000'000u);
  EXPECT_GT(s.power_w, 100e6);  // hundreds of MW with 2012 technology
  EXPECT_THROW(Facility::size_for(ServerPower{}, 1.5, 0, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace arch21::cloud
