// Tests for the resilience layer: seeded failure traces with failure
// domains, the availability-algebra wiring, the client-side policy
// engine (timeout / retry / budget / hedge / quorum), and the
// pool-size-independent multi-trial aggregator.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/policy.hpp"
#include "cloud/resilience.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliab/failure_trace.hpp"
#include "util/thread_pool.hpp"

namespace arch21 {
namespace {

using cloud::ClusterConfig;
using cloud::ClusterResult;
using reliab::FailureTraceConfig;

// ---------------------------------------------------------------- traces

TEST(FailureTrace, DeterministicAndSorted) {
  FailureTraceConfig cfg;
  cfg.leaves = 16;
  cfg.leaves_per_domain = 4;
  cfg.leaf = {.mtbf_hours = 10, .mttr_hours = 1};
  cfg.domain = {.mtbf_hours = 40, .mttr_hours = 2};
  cfg.horizon_hours = 200;
  cfg.seed = 7;
  const auto a = reliab::generate_failure_trace(cfg);
  const auto b = reliab::generate_failure_trace(cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_GT(a.leaf_failures, 0u);
  EXPECT_GT(a.domain_failures, 0u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].t_hours, b.events[i].t_hours);
    EXPECT_EQ(a.events[i].entity, b.events[i].entity);
    EXPECT_EQ(a.events[i].up, b.events[i].up);
    if (i > 0) {
      EXPECT_GE(a.events[i].t_hours, a.events[i - 1].t_hours);
    }
  }
}

TEST(FailureTrace, MeasuredAvailabilityMatchesAlgebra) {
  // Long horizon: the measured up-fraction of the trace must converge to
  // the steady-state availability algebra (leaf in series with domain).
  FailureTraceConfig cfg;
  cfg.leaves = 24;
  cfg.leaves_per_domain = 8;
  cfg.leaf = {.mtbf_hours = 100, .mttr_hours = 3};
  cfg.domain = {.mtbf_hours = 400, .mttr_hours = 5};
  cfg.horizon_hours = 50'000;
  cfg.seed = 11;
  const auto trace = reliab::generate_failure_trace(cfg);
  const double measured = trace.measured_leaf_availability(cfg);
  const double predicted = cfg.predicted_leaf_availability();
  EXPECT_NEAR(measured, predicted, 0.01);
  // And domains matter: the same trace with domains ignored would be
  // strictly more available.
  EXPECT_LT(predicted, cfg.leaf.availability());
}

TEST(FailureTrace, DomainEventTakesDownWholeGroup) {
  // Leaves that never fail on their own, domains that do: every leaf's
  // downtime comes from its domain alone.
  FailureTraceConfig cfg;
  cfg.leaves = 12;
  cfg.leaves_per_domain = 6;
  cfg.leaf = {.mtbf_hours = 1e12, .mttr_hours = 1};
  cfg.domain = {.mtbf_hours = 50, .mttr_hours = 5};
  cfg.horizon_hours = 20'000;
  cfg.seed = 3;
  const auto trace = reliab::generate_failure_trace(cfg);
  EXPECT_EQ(trace.leaf_failures, 0u);
  EXPECT_GT(trace.domain_failures, 0u);
  EXPECT_NEAR(trace.measured_leaf_availability(cfg),
              cfg.domain.availability(), 0.02);
}

TEST(FailureTrace, ValidationNamesField) {
  FailureTraceConfig cfg;
  cfg.leaves = 0;
  try {
    reliab::generate_failure_trace(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("leaves"), std::string::npos);
  }
  cfg.leaves = 4;
  cfg.horizon_hours = 0;
  EXPECT_THROW(reliab::generate_failure_trace(cfg), std::invalid_argument);
  cfg.horizon_hours = 10;
  cfg.leaf.mtbf_hours = -1;
  EXPECT_THROW(reliab::generate_failure_trace(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------- policy

TEST(Policy, ValidationRejectsNonsense) {
  cloud::RetryPolicy r;
  r.timeout_ms = -1;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = {};
  r.max_retries = 3;  // retries without a timeout can never trigger
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = {.timeout_ms = 10, .max_retries = 3, .backoff_mult = 0.5};
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = {.timeout_ms = 10, .jitter_frac = 1.5};
  EXPECT_THROW(r.validate(), std::invalid_argument);

  cloud::RetryBudget b{.enabled = true, .ratio = 0};
  EXPECT_THROW(b.validate(), std::invalid_argument);
  b = {.enabled = true, .ratio = 0.1, .burst = 0};
  EXPECT_THROW(b.validate(), std::invalid_argument);
  b = {.enabled = false, .ratio = -5};  // ignored while disabled
  EXPECT_NO_THROW(b.validate());

  cloud::QuorumPolicy q{.quorum_fraction = 0, .deadline_ms = 10};
  EXPECT_THROW(q.validate(), std::invalid_argument);
  q = {.quorum_fraction = 1.2};
  EXPECT_THROW(q.validate(), std::invalid_argument);
  q = {.quorum_fraction = 0.9, .deadline_ms = -2};
  EXPECT_THROW(q.validate(), std::invalid_argument);

  cloud::ResiliencePolicy p;
  p.hedge_after_ms = -3;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Policy, BackoffGrowsExponentiallyWithBoundedJitter) {
  cloud::RetryPolicy r{.timeout_ms = 10,
                       .max_retries = 8,
                       .backoff_base_ms = 2,
                       .backoff_mult = 2,
                       .jitter_frac = 0.2};
  Rng rng(1);
  for (unsigned k = 0; k < 6; ++k) {
    const double nominal = 2.0 * std::pow(2.0, k);
    for (int i = 0; i < 50; ++i) {
      const double d = r.backoff_ms(k, rng);
      EXPECT_GE(d, nominal * 0.8);
      EXPECT_LE(d, nominal * 1.2);
    }
  }
}

TEST(Policy, BackoffNeverNegativeAcrossJitterSweep) {
  // Property sweep of the post-jitter clamp: whatever jitter_frac in
  // [0, 1) and whatever the draw, a backoff must never schedule into
  // the past, and must stay inside the nominal +/- jitter envelope.
  Rng rng(123);
  for (double jf : {0.0, 0.25, 0.5, 0.9, 0.999}) {
    cloud::RetryPolicy r{.timeout_ms = 10,
                         .max_retries = 4,
                         .backoff_base_ms = 0.5,
                         .backoff_mult = 3.0,
                         .jitter_frac = jf};
    ASSERT_NO_THROW(r.validate());
    for (unsigned k = 0; k < 5; ++k) {
      const double nominal = 0.5 * std::pow(3.0, k);
      for (int i = 0; i < 200; ++i) {
        const double d = r.backoff_ms(k, rng);
        EXPECT_GE(d, 0.0);
        EXPECT_GE(d, nominal * (1.0 - jf) - 1e-12);
        EXPECT_LE(d, nominal * (1.0 + jf) + 1e-12);
      }
    }
  }
}

// --------------------------------------------------- cluster + failures

ClusterConfig small_faulty_cluster() {
  ClusterConfig cfg;
  cfg.leaves = 20;
  cfg.duration_s = 6;
  cfg.query_rate_hz = 30;
  cfg.background_rate_hz = 20;
  cfg.background_ms = 2;
  cfg.seed = 42;
  cfg.faults.enabled = true;
  cfg.faults.leaf = {.mtbf_hours = 20.0 / 3600, .mttr_hours = 1.0 / 3600};
  cfg.faults.leaves_per_domain = 10;
  cfg.faults.domain = {.mtbf_hours = 60.0 / 3600, .mttr_hours = 2.0 / 3600};
  return cfg;
}

TEST(ClusterResilience, FaultInjectionLosesQueriesWithoutMitigation) {
  const auto cfg = small_faulty_cluster();
  const auto r = cloud::simulate_cluster(cfg);
  EXPECT_GT(r.leaf_failures + r.domain_failures, 0u);
  EXPECT_GT(r.lost_requests, 0u);
  EXPECT_GT(r.failed_queries, 0u);  // replies lost, no timeout to recover
  EXPECT_EQ(r.queries, r.ok_queries + r.degraded_queries + r.failed_queries);
  EXPECT_LT(r.availability_measured, 1.0);
  EXPECT_NEAR(r.availability_predicted,
              cfg.faults.leaf.availability() * cfg.faults.domain.availability(),
              1e-12);
  // No mitigation: every leaf request is a first attempt.
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.hedges, 0u);
  EXPECT_NEAR(r.retry_amplification, 1.0, 1e-9);
}

TEST(ClusterResilience, DeterministicUnderFaultsAndPolicies) {
  auto cfg = small_faulty_cluster();
  cfg.policy.retry.timeout_ms = 20;
  cfg.policy.retry.max_retries = 3;
  cfg.policy.budget.enabled = true;
  cfg.policy.hedge_after_ms = 25;
  cfg.policy.quorum = {.quorum_fraction = 0.9, .deadline_ms = 80};
  const auto a = cloud::simulate_cluster(cfg);
  const auto b = cloud::simulate_cluster(cfg);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.ok_queries, b.ok_queries);
  EXPECT_EQ(a.degraded_queries, b.degraded_queries);
  EXPECT_EQ(a.failed_queries, b.failed_queries);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.lost_requests, b.lost_requests);
  EXPECT_DOUBLE_EQ(a.query_ms.quantile(0.99), b.query_ms.quantile(0.99));
  EXPECT_DOUBLE_EQ(a.sum_result_quality, b.sum_result_quality);
}

TEST(ClusterResilience, RetriesRecoverGoodputLostToFailures) {
  auto cfg = small_faulty_cluster();
  const auto bare = cloud::simulate_cluster(cfg);
  cfg.policy.retry.timeout_ms = 15;
  cfg.policy.retry.max_retries = 4;
  const auto retried = cloud::simulate_cluster(cfg);
  EXPECT_GT(retried.retries, 0u);
  EXPECT_GT(retried.timeouts, 0u);
  EXPECT_GT(retried.goodput_qps, bare.goodput_qps * 1.2);
  EXPECT_LT(retried.failed_queries, bare.failed_queries);
}

TEST(ClusterResilience, RetryBudgetBoundsAmplification) {
  // Under load + failures, naive retries amplify backend load (each
  // timeout duplicates work, which raises queueing, which causes more
  // timeouts); the budget keeps amplification near 1 + ratio.
  auto cfg = small_faulty_cluster();
  cfg.query_rate_hz = 60;       // ~0.24 rho from queries alone
  cfg.background_rate_hz = 50;  // +0.25 rho of background
  cfg.background_ms = 5;
  cfg.policy.retry.timeout_ms = 6;  // near the sojourn p75: storms feed
  cfg.policy.retry.backoff_base_ms = 1;

  auto naive_cfg = cfg;
  naive_cfg.policy.retry.max_retries = 16;
  naive_cfg.policy.budget.enabled = false;
  const auto naive = cloud::simulate_cluster(naive_cfg);

  auto budget_cfg = cfg;
  budget_cfg.policy.retry.max_retries = 16;
  budget_cfg.policy.budget.enabled = true;
  budget_cfg.policy.budget.ratio = 0.1;
  budget_cfg.policy.budget.burst = 20;
  const auto budgeted = cloud::simulate_cluster(budget_cfg);

  EXPECT_GT(naive.retry_amplification, 1.2);
  EXPECT_GT(budgeted.budget_denials, 0u);
  EXPECT_LT(budgeted.retry_amplification, naive.retry_amplification);
  EXPECT_LT(budgeted.retry_amplification, 1.0 + 0.1 + 0.05);
}

TEST(ClusterResilience, QuorumDegradationTradesQualityForLatency) {
  // Independent (uncorrelated) leaf failures plus queueing stragglers:
  // without quorum, any query missing a reply fails outright and the
  // answered ones wait for the slowest leaf; with a 90% quorum at a
  // deadline, most of those come back degraded -- bounded quality loss
  // for a hard latency cap and much higher goodput.
  ClusterConfig cfg;
  cfg.leaves = 20;
  cfg.duration_s = 6;
  cfg.query_rate_hz = 30;
  cfg.background_rate_hz = 50;
  cfg.background_ms = 5;
  cfg.seed = 42;
  cfg.faults.enabled = true;
  cfg.faults.leaf = {.mtbf_hours = 30.0 / 3600, .mttr_hours = 1.0 / 3600};
  const auto full = cloud::simulate_cluster(cfg);
  ASSERT_GT(full.failed_queries, 0u);

  // Deadline between the full run's median and p99: strictly below the
  // undegraded tail, comfortably above typical completion.
  const double deadline =
      0.5 * (full.query_ms.quantile(0.5) + full.query_ms.quantile(0.99));
  auto qcfg = cfg;
  qcfg.policy.quorum = {.quorum_fraction = 0.9, .deadline_ms = deadline};
  const auto quorum = cloud::simulate_cluster(qcfg);

  EXPECT_GT(quorum.degraded_queries, 0u);
  EXPECT_LT(quorum.mean_result_quality(), 1.0);
  EXPECT_GT(quorum.mean_result_quality(), 0.9);  // bounded quality loss
  // Every answered query resolves by the deadline, so the p99 drops
  // below the undegraded tail.
  EXPECT_LE(quorum.query_ms.max_seen(), deadline + 1e-9);
  EXPECT_LT(quorum.query_ms.quantile(0.99), full.query_ms.quantile(0.99));
  // Degradation answers queries that would otherwise fail outright.
  EXPECT_GT(quorum.goodput_qps, full.goodput_qps * 1.2);
}

TEST(ClusterResilience, HedgeUnifiedWithPolicyEngine) {
  ClusterConfig cfg;
  cfg.leaves = 20;
  cfg.duration_s = 5;
  cfg.query_rate_hz = 30;
  cfg.background_rate_hz = 50;
  cfg.background_ms = 5;
  cfg.policy.hedge_after_ms = 20;
  const auto via_policy = cloud::simulate_cluster(cfg);
  EXPECT_GT(via_policy.hedges, 0u);
  EXPECT_DOUBLE_EQ(via_policy.hedge_fraction,
                   static_cast<double>(via_policy.hedges) /
                       static_cast<double>(via_policy.leaf_requests));
  // Legacy knob routes into the same engine: identical results.
  ClusterConfig legacy = cfg;
  legacy.policy.hedge_after_ms = 0;
  legacy.hedge_after_ms = 20;
  const auto via_legacy = cloud::simulate_cluster(legacy);
  EXPECT_EQ(via_legacy.hedges, via_policy.hedges);
  EXPECT_DOUBLE_EQ(via_legacy.query_ms.quantile(0.99),
                   via_policy.query_ms.quantile(0.99));
}

// ------------------------------------------------- multi-trial aggregate

TEST(ClusterTrials, BitIdenticalAcrossPoolSizes) {
  auto cfg = small_faulty_cluster();
  cfg.duration_s = 3;
  cfg.policy.retry.timeout_ms = 20;
  cfg.policy.retry.max_retries = 2;
  cfg.policy.quorum = {.quorum_fraction = 0.9, .deadline_ms = 80};

  ThreadPool p1(1);
  ThreadPool p2(2);
  ThreadPool p4(4);
  const auto a = cloud::run_cluster_trials(cfg, 6, &p1);
  const auto b = cloud::run_cluster_trials(cfg, 6, &p2);
  const auto c = cloud::run_cluster_trials(cfg, 6, &p4);

  EXPECT_EQ(a.trials, 6u);
  for (const auto* r : {&b, &c}) {
    EXPECT_EQ(a.queries, r->queries);
    EXPECT_EQ(a.ok_queries, r->ok_queries);
    EXPECT_EQ(a.degraded_queries, r->degraded_queries);
    EXPECT_EQ(a.failed_queries, r->failed_queries);
    EXPECT_EQ(a.retries, r->retries);
    EXPECT_EQ(a.lost_requests, r->lost_requests);
    EXPECT_EQ(a.query_ms.count(), r->query_ms.count());
    EXPECT_DOUBLE_EQ(a.query_ms.quantile(0.5), r->query_ms.quantile(0.5));
    EXPECT_DOUBLE_EQ(a.query_ms.quantile(0.99), r->query_ms.quantile(0.99));
    EXPECT_DOUBLE_EQ(a.sum_result_quality, r->sum_result_quality);
    EXPECT_DOUBLE_EQ(a.goodput_qps, r->goodput_qps);
    EXPECT_DOUBLE_EQ(a.availability_measured, r->availability_measured);
    EXPECT_DOUBLE_EQ(a.retry_amplification, r->retry_amplification);
  }
}

#if ARCH21_OBS_ENABLED
// PR4 contract: observability is read-only.  Enabling the global metrics
// registry (and, for a single trial, attaching a trace) must leave every
// aggregate byte-identical to the uninstrumented run, at every pool size.
TEST(ClusterTrials, MetricsDoNotPerturbResultsAtAnyPoolSize) {
  auto cfg = small_faulty_cluster();
  cfg.duration_s = 3;
  cfg.policy.retry.timeout_ms = 20;
  cfg.policy.retry.max_retries = 2;
  cfg.policy.hedge_after_ms = 25;
  cfg.policy.quorum = {.quorum_fraction = 0.9, .deadline_ms = 80};

  ThreadPool p1(1);
  const auto base = cloud::run_cluster_trials(cfg, 6, &p1);

  auto& m = obs::MetricsRegistry::global();
  m.set_enabled(true);
  std::vector<cloud::ClusterResult> instrumented;
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    instrumented.push_back(cloud::run_cluster_trials(cfg, 6, &pool));
  }
  m.set_enabled(false);

  for (const auto& r : instrumented) {
    EXPECT_EQ(base.queries, r.queries);
    EXPECT_EQ(base.ok_queries, r.ok_queries);
    EXPECT_EQ(base.degraded_queries, r.degraded_queries);
    EXPECT_EQ(base.failed_queries, r.failed_queries);
    EXPECT_EQ(base.retries, r.retries);
    EXPECT_EQ(base.hedges, r.hedges);
    EXPECT_EQ(base.timeouts, r.timeouts);
    EXPECT_EQ(base.lost_requests, r.lost_requests);
    EXPECT_EQ(base.budget_denials, r.budget_denials);
    EXPECT_EQ(base.query_ms.count(), r.query_ms.count());
    EXPECT_DOUBLE_EQ(base.query_ms.quantile(0.5), r.query_ms.quantile(0.5));
    EXPECT_DOUBLE_EQ(base.query_ms.quantile(0.99), r.query_ms.quantile(0.99));
    EXPECT_DOUBLE_EQ(base.sum_result_quality, r.sum_result_quality);
    EXPECT_DOUBLE_EQ(base.goodput_qps, r.goodput_qps);
    EXPECT_DOUBLE_EQ(base.retry_amplification, r.retry_amplification);
  }
}

TEST(ClusterTrials, TracedSingleTrialMatchesUntraced) {
  auto cfg = small_faulty_cluster();
  cfg.duration_s = 3;
  cfg.policy.retry.timeout_ms = 20;
  cfg.policy.quorum = {.quorum_fraction = 0.9, .deadline_ms = 80};
  const auto plain = cloud::simulate_cluster(cfg);

  obs::TraceBuffer trace(std::size_t{1} << 18, 1e3);
  auto traced_cfg = cfg;
  traced_cfg.trace = &trace;
  const auto traced = cloud::simulate_cluster(traced_cfg);

  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(plain.queries, traced.queries);
  EXPECT_EQ(plain.ok_queries, traced.ok_queries);
  EXPECT_EQ(plain.degraded_queries, traced.degraded_queries);
  EXPECT_EQ(plain.failed_queries, traced.failed_queries);
  EXPECT_EQ(plain.lost_requests, traced.lost_requests);
  EXPECT_DOUBLE_EQ(plain.query_ms.quantile(0.99),
                   traced.query_ms.quantile(0.99));
  EXPECT_DOUBLE_EQ(plain.sum_result_quality, traced.sum_result_quality);
}
#endif  // ARCH21_OBS_ENABLED

TEST(ClusterTrials, AggregatesAndValidates) {
  ClusterConfig cfg;
  cfg.leaves = 8;
  cfg.duration_s = 2;
  cfg.query_rate_hz = 20;
  const auto agg = cloud::run_cluster_trials(cfg, 3);
  EXPECT_EQ(agg.trials, 3u);
  EXPECT_GT(agg.queries, 0u);
  EXPECT_THROW(cloud::run_cluster_trials(cfg, 0), std::invalid_argument);
}

}  // namespace
}  // namespace arch21
