// Tests for the TL2-style STM: single-transaction semantics, conflict
// detection, atomicity under adversarial interleavings (the bank-
// transfer conservation invariant), and abort statistics.

#include <gtest/gtest.h>

#include <numeric>

#include "par/stm.hpp"

namespace arch21::par {
namespace {

TEST(Stm, HeapBasics) {
  StmHeap h(16);
  EXPECT_EQ(h.size(), 16u);
  h.poke(3, 42);
  EXPECT_EQ(h.peek(3), 42u);
  EXPECT_THROW(StmHeap(0), std::invalid_argument);
}

TEST(Stm, SoloTransactionCommits) {
  StmHeap h(8);
  h.poke(0, 10);
  Txn t(h, 0);
  const auto v = t.read(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 10u);
  t.write(0, *v + 5);
  t.write(1, 99);
  EXPECT_TRUE(t.commit());
  EXPECT_EQ(h.peek(0), 15u);
  EXPECT_EQ(h.peek(1), 99u);
  EXPECT_GT(h.clock(), 0u);
}

TEST(Stm, ReadYourOwnWrites) {
  StmHeap h(8);
  Txn t(h, 0);
  t.write(2, 7);
  const auto v = t.read(2);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7u);
  t.abort();
  EXPECT_EQ(h.peek(2), 0u);  // nothing published
}

TEST(Stm, WriteWriteUpgrade) {
  StmHeap h(8);
  Txn t(h, 0);
  t.write(1, 1);
  t.write(1, 2);  // overwrite in the write set
  EXPECT_TRUE(t.commit());
  EXPECT_EQ(h.peek(1), 2u);
}

TEST(Stm, ConflictingCommitAborts) {
  StmHeap h(8);
  h.poke(0, 100);
  Txn a(h, 0);
  Txn b(h, 1);
  const auto va = a.read(0);
  const auto vb = b.read(0);
  ASSERT_TRUE(va && vb);
  a.write(0, *va + 1);
  b.write(0, *vb + 1);
  EXPECT_TRUE(a.commit());
  // b's read of word 0 is now stale: commit must fail.
  EXPECT_FALSE(b.commit());
  EXPECT_EQ(h.peek(0), 101u);  // exactly one increment won
}

TEST(Stm, ReadSeesNoLockedWord) {
  StmHeap h(8);
  Txn writer(h, 0);
  writer.write(4, 1);
  // Lock the write set manually by starting commit in two phases is not
  // exposed; emulate by a committed change bumping the version past a
  // later snapshot instead.
  EXPECT_TRUE(writer.commit());
  // A transaction that STARTED before the commit sees a newer version.
  // (Constructed after, so this read is fine.)
  Txn reader(h, 1);
  EXPECT_TRUE(reader.read(4).has_value());
}

TEST(Stm, StaleSnapshotRejected) {
  StmHeap h(8);
  Txn old(h, 0);      // snapshot at clock 0
  Txn writer(h, 1);
  writer.write(5, 7);
  EXPECT_TRUE(writer.commit());  // clock -> 1, word 5 version 1
  // old's snapshot (0) cannot read version-1 data consistently.
  EXPECT_FALSE(old.read(5).has_value());
}

TEST(Stm, UseAfterFinishThrows) {
  StmHeap h(8);
  Txn t(h, 0);
  t.write(0, 1);
  EXPECT_TRUE(t.commit());
  EXPECT_THROW(t.read(0), std::logic_error);
  EXPECT_THROW(t.write(0, 2), std::logic_error);
  EXPECT_THROW(t.commit(), std::logic_error);
}

TEST(Stm, TransferScriptsConserveTotal) {
  // The headline atomicity property: random transfers under adversarial
  // interleaving never create or destroy money.
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    StmHeap h(16);
    for (std::size_t i = 0; i < h.size(); ++i) h.poke(i, 1000);
    const auto scripts = make_transfer_scripts(16, 200, seed);
    const auto stats = run_interleaved(h, scripts, seed * 31);
    EXPECT_EQ(stats.commits, 200u);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < h.size(); ++i) total += h.peek(i);
    EXPECT_EQ(total, 16u * 1000u) << "seed " << seed;
  }
}

TEST(Stm, ContentionRaisesAbortRate) {
  // 2 hot accounts vs 64 accounts: fewer accounts = more conflicts.
  auto run = [](std::size_t accounts) {
    StmHeap h(accounts);
    for (std::size_t i = 0; i < accounts; ++i) h.poke(i, 1000);
    const auto scripts = make_transfer_scripts(accounts, 300, 5);
    return run_interleaved(h, scripts, 99).abort_rate();
  };
  const double hot = run(2);
  const double cool = run(64);
  EXPECT_GT(hot, cool);
  EXPECT_GT(hot, 0.05);
}

TEST(Stm, ReadOnlyTransactionsNeverBlockProgress) {
  StmHeap h(8);
  h.poke(0, 5);
  Txn ro(h, 0);
  const auto v = ro.read(0);
  ASSERT_TRUE(v);
  EXPECT_TRUE(ro.commit());  // read-only commit always succeeds
  EXPECT_EQ(h.clock(), 0u);  // and does not bump the clock
}

TEST(Stm, DeterministicForSeed) {
  auto run = [] {
    StmHeap h(8);
    for (std::size_t i = 0; i < 8; ++i) h.poke(i, 100);
    const auto scripts = make_transfer_scripts(8, 100, 3);
    return run_interleaved(h, scripts, 17);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
}

TEST(Stm, ScriptValidation) {
  EXPECT_THROW(make_transfer_scripts(1, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace arch21::par
