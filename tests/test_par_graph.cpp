// Tests for task graphs: construction, topological ordering, cycle
// detection, critical paths, and the generator shapes.

#include <gtest/gtest.h>

#include <algorithm>

#include "par/taskgraph.hpp"

namespace arch21::par {
namespace {

TEST(TaskGraph, AddAndQuery) {
  TaskGraph g;
  const auto a = g.add(10, 100);
  const auto b = g.add(20);
  g.add_edge(a, b);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.task(a).succ.size(), 1u);
  EXPECT_EQ(g.task(b).pred.size(), 1u);
  EXPECT_DOUBLE_EQ(g.total_work(), 30.0);
  EXPECT_DOUBLE_EQ(g.total_edge_bytes(), 100.0);
}

TEST(TaskGraph, EdgeValidation) {
  TaskGraph g;
  const auto a = g.add(1);
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 99), std::invalid_argument);
}

TEST(TaskGraph, TopoOrderRespectsEdges) {
  TaskGraph g;
  const auto a = g.add(1);
  const auto b = g.add(1);
  const auto c = g.add(1);
  g.add_edge(a, c);
  g.add_edge(b, c);
  const auto order = g.topo_order();
  ASSERT_EQ(order.size(), 3u);
  const auto pos = [&](TaskId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(c));
}

TEST(TaskGraph, CycleDetected) {
  TaskGraph g;
  const auto a = g.add(1);
  const auto b = g.add(1);
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.topo_order(), std::logic_error);
  EXPECT_THROW(g.critical_path(), std::logic_error);
}

TEST(TaskGraph, CriticalPathHandComputed) {
  // Diamond: a(5) -> {b(10), c(3)} -> d(2).  CP = 5 + 10 + 2 = 17.
  TaskGraph g;
  const auto a = g.add(5);
  const auto b = g.add(10);
  const auto c = g.add(3);
  const auto d = g.add(2);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  EXPECT_DOUBLE_EQ(g.critical_path(), 17.0);
  EXPECT_DOUBLE_EQ(g.total_work(), 20.0);
  EXPECT_NEAR(g.inherent_parallelism(), 20.0 / 17.0, 1e-12);
}

TEST(TaskGraph, DisconnectedComponents) {
  TaskGraph g;
  g.add(7);
  g.add(9);
  EXPECT_DOUBLE_EQ(g.critical_path(), 9.0);
  EXPECT_EQ(g.topo_order().size(), 2u);
}

TEST(Generators, ForkJoinShape) {
  const auto g = make_fork_join(8, 10.0, 64.0);
  EXPECT_EQ(g.size(), 10u);  // src + 8 + sink
  // CP = src + one worker + sink.
  EXPECT_DOUBLE_EQ(g.critical_path(), 30.0);
  EXPECT_DOUBLE_EQ(g.total_work(), 100.0);
  // 8 edges out of src + 8 into sink.
  EXPECT_DOUBLE_EQ(g.total_edge_bytes(), 16 * 64.0);
  EXPECT_NEAR(g.inherent_parallelism(), 100.0 / 30.0, 1e-12);
}

TEST(Generators, LayeredShapeAndDeterminism) {
  const auto g1 = make_layered(5, 10, 2, 100.0, 32.0, 99);
  const auto g2 = make_layered(5, 10, 2, 100.0, 32.0, 99);
  EXPECT_EQ(g1.size(), 50u);
  EXPECT_EQ(g2.size(), 50u);
  EXPECT_DOUBLE_EQ(g1.total_work(), g2.total_work());  // same seed
  const auto g3 = make_layered(5, 10, 2, 100.0, 32.0, 100);
  EXPECT_NE(g1.total_work(), g3.total_work());  // different seed jitter
  // Critical path spans at least all layers of min work.
  EXPECT_GE(g1.critical_path(), 5 * 70.0);
  EXPECT_THROW(make_layered(0, 4, 1, 1, 0, 1), std::invalid_argument);
}

TEST(Generators, LayeredFanInBounded) {
  const auto g = make_layered(3, 4, 2, 10, 1, 7);
  for (TaskId i = 0; i < g.size(); ++i) {
    EXPECT_LE(g.task(i).pred.size(), 2u);
    // No duplicate predecessors.
    auto preds = g.task(i).pred;
    std::sort(preds.begin(), preds.end());
    EXPECT_EQ(std::adjacent_find(preds.begin(), preds.end()), preds.end());
  }
}

TEST(Generators, WavefrontDependencies) {
  const auto g = make_wavefront(4, 5, 2.0, 8.0);
  EXPECT_EQ(g.size(), 20u);
  // Task (0,0) has no preds; (3,4) has two.
  EXPECT_TRUE(g.task(0).pred.empty());
  EXPECT_EQ(g.task(19).pred.size(), 2u);
  // CP walks rows+cols-1 cells.
  EXPECT_DOUBLE_EQ(g.critical_path(), (4 + 5 - 1) * 2.0);
  // Inherent parallelism bounded by min(rows, cols) for a wavefront.
  EXPECT_LE(g.inherent_parallelism(), 4.0 + 1e-12);
}

TEST(Generators, MapReduceShape) {
  const auto g = make_map_reduce(6, 3, 10.0, 5.0, 128.0);
  EXPECT_EQ(g.size(), 10u);  // 6 + 3 + merge
  // Every reducer depends on every mapper.
  for (TaskId r = 6; r < 9; ++r) {
    EXPECT_EQ(g.task(r).pred.size(), 6u);
  }
  // Merge depends on all reducers.
  EXPECT_EQ(g.task(9).pred.size(), 3u);
  EXPECT_DOUBLE_EQ(g.critical_path(), 10.0 + 5.0 + 5.0);
}

}  // namespace
}  // namespace arch21::par
