// Tests for the gray-failure (fail-slow) layer: Resource::set_speed edge
// validation, seeded GrayTrace generation, the client-side GrayDetector
// (EWMA outliers, reply-rate/zombie accounting, eviction + probation,
// adaptive deadlines), gray WAN-link degradation, cluster injection +
// detection end to end, cross-pool determinism, disabled-knob
// byte-identity, and ClusterResult::merge() over the gray telemetry.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "cloud/cluster.hpp"
#include "cloud/gray_detect.hpp"
#include "cloud/policy.hpp"
#include "cloud/resilience.hpp"
#include "cloud/wan.hpp"
#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "reliab/gray.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace arch21 {
namespace {

using cloud::ClusterConfig;
using cloud::ClusterResult;
using cloud::GrayDetector;
using des::Resource;
using des::Simulator;
using des::Time;
using reliab::GrayMode;

// ----------------------------------------------------- Resource::set_speed

TEST(ResourceSpeed, RejectsNonPositiveAndNonFinite) {
  Simulator sim;
  Resource r(sim, 1);
  EXPECT_THROW(r.set_speed(0.0), std::invalid_argument);
  EXPECT_THROW(r.set_speed(-1.0), std::invalid_argument);
  EXPECT_THROW(r.set_speed(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(r.set_speed(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(r.set_speed(-std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  // A failed set leaves the speed untouched.
  EXPECT_DOUBLE_EQ(r.speed(), 1.0);
}

TEST(ResourceSpeed, ScalesFutureServiceTimes) {
  Simulator sim;
  Resource r(sim, 1);
  r.set_speed(0.5);  // half speed: requested service takes twice as long
  EXPECT_DOUBLE_EQ(r.speed(), 0.5);
  double end = -1;
  r.request(10.0, [&end](Time, Time) { end = 0; });
  sim.schedule_at(19.0, [&end] { EXPECT_EQ(end, -1); });
  sim.run();
  EXPECT_EQ(end, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
  // Restored to full speed, service times are literal again.
  r.set_speed(1.0);
  r.request(5.0, nullptr);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 25.0);
}

// ------------------------------------------------------------- gray traces

reliab::GrayTraceConfig busy_trace() {
  reliab::GrayTraceConfig cfg;
  cfg.entities = 40;
  cfg.episode = {.mtbf_hours = 0.02, .mttr_hours = 0.005};
  cfg.horizon_hours = 1.0;
  cfg.seed = 99;
  return cfg;
}

TEST(GrayTrace, ValidatesConfig) {
  reliab::GrayTraceConfig ok;
  EXPECT_NO_THROW(ok.validate());
  auto bad = ok;
  bad.entities = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.slow_factor_min = 0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.slow_factor_max = bad.slow_factor_min - 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.loss_fraction_min = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.loss_fraction_max = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.spike_prob = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.w_slow = bad.w_lossy = bad.w_zombie = bad.w_jittery = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.w_lossy = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.episode.mtbf_hours = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(GrayTrace, DeterministicAndWellFormed) {
  const auto cfg = busy_trace();
  const auto a = reliab::generate_gray_trace(cfg);
  const auto b = reliab::generate_gray_trace(cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_GT(a.episodes, 0u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events[i].t_hours, b.events[i].t_hours);
    EXPECT_EQ(a.events[i].entity, b.events[i].entity);
    EXPECT_EQ(a.events[i].mode, b.events[i].mode);
    EXPECT_EQ(a.events[i].onset, b.events[i].onset);
    EXPECT_DOUBLE_EQ(a.events[i].severity, b.events[i].severity);
  }
  // Sorted by time; onsets carry severity, clears do not.
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_LE(a.events[i - 1].t_hours, a.events[i].t_hours);
  }
  std::uint64_t onsets = 0;
  for (const auto& ev : a.events) {
    if (ev.onset) {
      ++onsets;
      EXPECT_GT(ev.severity, 0.0);
    } else {
      EXPECT_EQ(ev.severity, 0.0);
    }
    EXPECT_LT(ev.entity, cfg.entities);
    EXPECT_LT(ev.t_hours, cfg.horizon_hours);
  }
  EXPECT_EQ(onsets, a.episodes);
  EXPECT_EQ(a.episodes_by_mode[0] + a.episodes_by_mode[1] +
                a.episodes_by_mode[2] + a.episodes_by_mode[3],
            a.episodes);
  // Steady-state degraded fraction lands near mttr / (mtbf + mttr) = 0.2.
  const double f = a.measured_degraded_fraction(cfg);
  EXPECT_GT(f, 0.1);
  EXPECT_LT(f, 0.3);

  auto other = cfg;
  other.seed = 100;
  const auto c = reliab::generate_gray_trace(other);
  EXPECT_NE(a.events.size(), c.events.size());
}

// ---------------------------------------------------------- GrayDetector

cloud::GrayDetectionPolicy det_policy() {
  cloud::GrayDetectionPolicy pol;
  pol.enabled = true;
  return pol;  // library defaults: factor 4, strikes 2, floor 0.75, etc.
}

void feed(GrayDetector& d, unsigned r, unsigned n, double latency_ms) {
  for (unsigned i = 0; i < n; ++i) {
    d.on_sent(r);
    d.on_reply(r, latency_ms);
  }
}

TEST(GrayDetectorUnit, OutlierNeedsConsecutiveStrikes) {
  GrayDetector d;
  d.init(det_policy(), 4, 100.0);
  ASSERT_TRUE(d.engaged());
  for (unsigned r = 0; r < 3; ++r) feed(d, r, 10, 4.0);
  feed(d, 3, 10, 40.0);  // EWMA 40 > 4 x max(p25 = 4, floor 2)
  d.eval(100);
  EXPECT_EQ(d.evictions(), 0u);  // strike one only
  EXPECT_FALSE(d.evicted(3));
  feed(d, 3, 4, 40.0);
  d.eval(200);
  EXPECT_EQ(d.evictions(), 1u);  // strike two: evicted
  EXPECT_TRUE(d.evicted(3));
  EXPECT_EQ(d.state(3), GrayDetector::State::kEvicted);
  // Redirects walk round-robin over the healthy peers only.
  EXPECT_EQ(d.redirect_target(3), 0u);
  EXPECT_EQ(d.redirect_target(3), 1u);
  EXPECT_EQ(d.redirect_target(3), 2u);
  EXPECT_EQ(d.redirect_target(3), 0u);
}

TEST(GrayDetectorUnit, SingleExcursionDoesNotEvict) {
  GrayDetector d;
  d.init(det_policy(), 4, 100.0);
  for (unsigned r = 0; r < 3; ++r) feed(d, r, 10, 4.0);
  feed(d, 3, 10, 40.0);
  d.eval(100);  // strike one
  feed(d, 3, 30, 4.0);  // EWMA decays back under the threshold
  d.eval(200);  // streak resets instead of evicting
  feed(d, 3, 10, 40.0);
  d.eval(300);  // over again -- but this is strike one, not two
  EXPECT_EQ(d.evictions(), 0u);
  EXPECT_FALSE(d.evicted(3));
}

TEST(GrayDetectorUnit, ZombieFlaggedAfterZeroReplyIntervals) {
  GrayDetector d;
  d.init(det_policy(), 3, 100.0);
  feed(d, 0, 16, 4.0);
  feed(d, 1, 16, 4.0);
  for (unsigned i = 0; i < 16; ++i) d.on_sent(2);  // sends, no replies
  d.eval(100);
  EXPECT_EQ(d.zombies(), 0u);  // strike one
  for (unsigned i = 0; i < 16; ++i) d.on_sent(2);
  d.eval(200);
  EXPECT_EQ(d.zombies(), 1u);
  EXPECT_TRUE(d.evicted(2));
}

TEST(GrayDetectorUnit, RejectedSendsAreNotSilentEvidence) {
  // Bounced sends were answered (loudly) by the replica; without the
  // discount a busy-but-healthy replica would be rate-evicted.
  GrayDetector d;
  d.init(det_policy(), 3, 100.0);
  for (unsigned pass = 0; pass < 3; ++pass) {
    feed(d, 0, 16, 4.0);
    feed(d, 1, 16, 4.0);
    for (unsigned i = 0; i < 16; ++i) {
      d.on_sent(2);
      d.on_rejected(2);
    }
    d.eval(100.0 * (pass + 1));
  }
  EXPECT_EQ(d.evictions(), 0u);
  EXPECT_EQ(d.zombies(), 0u);
  EXPECT_FALSE(d.evicted(2));
}

TEST(GrayDetectorUnit, EvictionExpiresIntoProbationThenReadmits) {
  auto pol = det_policy();
  pol.evict_ms = 1000;
  GrayDetector d;
  d.init(pol, 4, 100.0);
  for (unsigned r = 0; r < 3; ++r) feed(d, r, 10, 4.0);
  feed(d, 3, 10, 40.0);
  d.eval(100);
  feed(d, 3, 4, 40.0);
  d.eval(200);
  ASSERT_TRUE(d.evicted(3));
  // Before expiry the state holds.
  d.eval(1100);
  EXPECT_TRUE(d.evicted(3));
  // Past evicted_until (200 + 1000): probation with fresh counters.
  for (unsigned r = 0; r < 3; ++r) feed(d, r, 10, 4.0);
  d.eval(1300);
  EXPECT_EQ(d.probations(), 1u);
  EXPECT_EQ(d.state(3), GrayDetector::State::kProbation);
  EXPECT_FALSE(d.evicted(3));  // probation receives traffic again
  // Clean replies re-admit it to full health.
  feed(d, 3, pol.probation_samples, 4.0);
  for (unsigned r = 0; r < 3; ++r) feed(d, r, 10, 4.0);
  d.eval(1400);
  EXPECT_EQ(d.state(3), GrayDetector::State::kHealthy);
}

TEST(GrayDetectorUnit, AdaptiveDeadlineTracksWindowTail) {
  GrayDetector d;
  d.init(det_policy(), 2, 100.0);
  EXPECT_DOUBLE_EQ(d.timeout_ms(), 100.0);  // starts at the fixed timeout
  feed(d, 0, 20, 10.0);
  feed(d, 1, 20, 10.0);
  d.eval(100);
  // ~1.5 x p99 of a 10 ms window, clamped to [deadline_min, fixed].
  EXPECT_LT(d.timeout_ms(), 100.0);
  EXPECT_GE(d.timeout_ms(), det_policy().deadline_min_ms);
  // Too few samples leaves the deadline where it was.
  const double held = d.timeout_ms();
  feed(d, 0, 2, 10.0);
  d.eval(200);
  EXPECT_DOUBLE_EQ(d.timeout_ms(), held);
}

TEST(GrayDetectorUnit, ScoreOnlyModeNeverEvicts) {
  auto pol = det_policy();
  pol.evict = false;
  GrayDetector d;
  d.init(pol, 4, 100.0);
  for (unsigned pass = 0; pass < 4; ++pass) {
    for (unsigned r = 0; r < 3; ++r) feed(d, r, 10, 4.0);
    feed(d, 3, 10, 60.0);
    d.eval(100.0 * (pass + 1));
  }
  EXPECT_EQ(d.evictions(), 0u);
  EXPECT_FALSE(d.evicted(3));
  EXPECT_LT(d.timeout_ms(), 100.0);  // the deadline still adapts
}

// ------------------------------------------------------- gray WAN links

TEST(WanGray, ValidatesConfig) {
  cloud::WanConfig cfg;
  cfg.gray_links = true;
  EXPECT_NO_THROW(cfg.validate());
  auto bad = cfg;
  bad.gray_factor_min = 0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = cfg;
  bad.gray_factor_max = cfg.gray_factor_min - 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = cfg;
  bad.gray_loss_fraction = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(WanGray, HealthyWanDrawsNothingAndDeliversEverything) {
  cloud::WanConfig cfg;  // gray_links off
  cloud::Wan wan(cfg, 60000.0, 42);
  EXPECT_EQ(wan.gray_episodes(), 0u);
  Rng rng(7);
  for (unsigned i = 0; i < 10; ++i) EXPECT_TRUE(wan.link_delivers(0, 1, rng));
  // link_delivers consumed no randomness: the stream is untouched.
  EXPECT_EQ(rng.next(), Rng(7).next());
}

TEST(WanGray, DegradedLinkInflatesLatencyAndDropsTraversals) {
  cloud::WanConfig cfg;
  cfg.jitter_frac = 0;  // make the inflation factor exact
  cfg.gray_links = true;
  // Episodes begin within ~0.36 s and last ~10 h: by end of horizon every
  // link is mid-episode.
  cfg.gray_link = {.mtbf_hours = 0.0001, .mttr_hours = 10.0};
  cfg.gray_loss_fraction = 0.5;
  cloud::Wan wan(cfg, 60000.0, 42);
  EXPECT_GT(wan.gray_episodes(), 0u);
  Simulator sim;
  wan.install(sim);
  sim.run();
  unsigned degraded = 0;
  Rng rng(7);
  for (unsigned a = 0; a < cfg.regions; ++a) {
    for (unsigned b = a + 1; b < cfg.regions; ++b) {
      if (!wan.link_degraded(a, b)) continue;
      ++degraded;
      const double base = cfg.base_latency(a, b);
      const double sample = wan.sample_latency_ms(a, b, rng);
      EXPECT_GE(sample, base * cfg.gray_factor_min * 0.999);
      EXPECT_LE(sample, base * cfg.gray_factor_max * 1.001);
    }
  }
  ASSERT_GT(degraded, 0u);
  // Partial loss: some traversals of a degraded link vanish.
  unsigned delivered = 0, dropped = 0;
  for (unsigned i = 0; i < 200; ++i) {
    (wan.link_delivers(0, 1, rng) ? delivered : dropped) += 1;
  }
  if (wan.link_degraded(0, 1)) {
    EXPECT_GT(delivered, 0u);
    EXPECT_GT(dropped, 0u);
  }
  // Intra-region paths never degrade.
  EXPECT_FALSE(wan.link_degraded(1, 1));
  EXPECT_TRUE(wan.link_delivers(1, 1, rng));
}

// ------------------------------------------------- cluster integration

ClusterConfig gray_cluster() {
  ClusterConfig cfg;
  cfg.leaves = 10;
  cfg.query_rate_hz = 80;
  cfg.leaf_service_ms = 3;
  cfg.service_sigma = 0.35;
  cfg.duration_s = 8;
  cfg.seed = 7;
  cfg.goodput_window_s = 1.0;
  cfg.gray.burst_leaves = 3;
  cfg.gray.burst_start_s = 2;
  cfg.gray.burst_duration_s = 4;
  cfg.gray.burst_mode = GrayMode::kSlow;
  cfg.gray.burst_severity = 8.0;
  cfg.policy.retry.timeout_ms = 25;
  cfg.policy.retry.max_retries = 2;
  cfg.policy.budget.enabled = true;
  cfg.policy.budget.ratio = 0.1;
  cfg.policy.quorum = {.quorum_fraction = 0.9, .deadline_ms = 100};
  return cfg;
}

cloud::GrayDetectionPolicy cluster_det_policy() {
  auto pol = det_policy();
  // 80 qps -> 8 sends per leaf per 100 ms; stretch the eval interval so
  // the rate checks have their minimum sample size.
  pol.eval_interval_ms = 200;
  return pol;
}

TEST(ClusterGray, DefaultsLeaveGrayTelemetryZero) {
  ClusterConfig cfg;
  cfg.leaves = 10;
  cfg.query_rate_hz = 40;
  cfg.duration_s = 3;
  cfg.seed = 5;
  const auto r = cloud::simulate_cluster(cfg);
  EXPECT_EQ(r.gray_episodes, 0u);
  EXPECT_EQ(r.gray_dropped_replies, 0u);
  EXPECT_EQ(r.gray_evictions, 0u);
  EXPECT_EQ(r.gray_probations, 0u);
  EXPECT_EQ(r.gray_zombies, 0u);
  EXPECT_EQ(r.gray_redirected_sends, 0u);
  EXPECT_DOUBLE_EQ(r.adaptive_deadline_ms, 0.0);
}

TEST(ClusterGray, ValidatesExclusionsAndPolicyPreconditions) {
  auto cfg = gray_cluster();
  EXPECT_NO_THROW(cfg.validate());
  auto bad = cfg;
  bad.net_latency_ms = 0.2;  // gray injection is serial-engine only
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = cfg;
  bad.powercap.enabled = true;  // both drive Resource::set_speed
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = cfg;
  bad.gray.burst_leaves = bad.leaves + 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = cfg;
  bad.gray.burst_mode = GrayMode::kLossy;
  bad.gray.burst_severity = 1.5;  // loss fraction > 1
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // Detection needs a timeout to adapt and a quorum to degrade onto.
  bad = cfg;
  bad.policy.gray = cluster_det_policy();
  bad.policy.quorum = {};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.policy.quorum = cfg.policy.quorum;
  bad.policy.retry.timeout_ms = 0;
  bad.policy.retry.max_retries = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(ClusterGray, PlantedSlowBurstFiresDetectionAndRestoresGoodput) {
  const auto blind = cloud::simulate_cluster(gray_cluster());
  EXPECT_EQ(blind.gray_episodes, 3u);  // one onset per burst leaf
  EXPECT_EQ(blind.gray_evictions, 0u);  // nothing watching

  auto cfg = gray_cluster();
  cfg.policy.gray = cluster_det_policy();
  const auto det = cloud::simulate_cluster(cfg);
  // Each slow leaf is spotted at least once (re-evictions may add more).
  EXPECT_GE(det.gray_evictions, 3u);
  EXPECT_GT(det.gray_redirected_sends, 0u);
  EXPECT_GT(det.adaptive_deadline_ms, 0.0);
  // Identical workload; detection turns failed queries back into answers.
  EXPECT_EQ(det.queries, blind.queries);
  EXPECT_GT(det.ok_queries + det.degraded_queries,
            blind.ok_queries + blind.degraded_queries);
}

TEST(ClusterGray, HealthyClusterSeesNoFalseEvictions) {
  auto cfg = gray_cluster();
  cfg.gray = {};  // no injection at all
  cfg.policy.gray = cluster_det_policy();
  const auto r = cloud::simulate_cluster(cfg);
  EXPECT_EQ(r.gray_evictions, 0u);
  EXPECT_EQ(r.gray_zombies, 0u);
  EXPECT_EQ(r.gray_redirected_sends, 0u);
  EXPECT_EQ(r.gray_dropped_replies, 0u);
}

TEST(ClusterGray, ZombieBurstStarvesQuorumUntilDetectionEvicts) {
  auto cfg = gray_cluster();
  cfg.gray.burst_mode = GrayMode::kZombie;
  const auto blind = cloud::simulate_cluster(cfg);
  // 3 zombies against a 9-of-10 quorum: every query inside the burst
  // waits out the deadline and fails.
  EXPECT_GT(blind.failed_queries, 0u);
  EXPECT_GT(blind.gray_dropped_replies, 0u);

  auto det_cfg = cfg;
  det_cfg.policy.gray = cluster_det_policy();
  const auto det = cloud::simulate_cluster(det_cfg);
  EXPECT_GE(det.gray_zombies, 3u);  // all three flagged by reply-rate zero
  EXPECT_GE(det.gray_evictions, 3u);
  EXPECT_GT(det.gray_redirected_sends, 0u);
  EXPECT_EQ(det.queries, blind.queries);
  EXPECT_LT(det.failed_queries, blind.failed_queries);
  EXPECT_GT(det.ok_queries + det.degraded_queries,
            blind.ok_queries + blind.degraded_queries);
}

TEST(ClusterGray, StochasticTraceDeterministicAcrossPools) {
  auto cfg = gray_cluster();
  cfg.gray.enabled = true;  // stochastic episodes on top of the burst
  cfg.gray.episode = {.mtbf_hours = 40.0 / 3600.0, .mttr_hours = 4.0 / 3600.0};
  cfg.policy.gray = cluster_det_policy();
  cfg.policy.breaker.enabled = true;

  ThreadPool p1(1), p2(2), p4(4);
  const auto a = cloud::run_cluster_trials(cfg, 3, &p1);
  const auto b = cloud::run_cluster_trials(cfg, 3, &p2);
  const auto c = cloud::run_cluster_trials(cfg, 3, &p4);
  for (const auto* r : {&b, &c}) {
    EXPECT_EQ(a.queries, r->queries);
    EXPECT_EQ(a.ok_queries, r->ok_queries);
    EXPECT_EQ(a.degraded_queries, r->degraded_queries);
    EXPECT_EQ(a.failed_queries, r->failed_queries);
    EXPECT_EQ(a.timeouts, r->timeouts);
    EXPECT_EQ(a.retries, r->retries);
    EXPECT_EQ(a.gray_episodes, r->gray_episodes);
    EXPECT_EQ(a.gray_dropped_replies, r->gray_dropped_replies);
    EXPECT_EQ(a.gray_evictions, r->gray_evictions);
    EXPECT_EQ(a.gray_probations, r->gray_probations);
    EXPECT_EQ(a.gray_zombies, r->gray_zombies);
    EXPECT_EQ(a.gray_redirected_sends, r->gray_redirected_sends);
    EXPECT_DOUBLE_EQ(a.adaptive_deadline_ms, r->adaptive_deadline_ms);
    EXPECT_EQ(a.breaker_open_transitions, r->breaker_open_transitions);
    EXPECT_EQ(a.answered_per_window, r->answered_per_window);
    EXPECT_DOUBLE_EQ(a.query_ms.quantile(0.99), r->query_ms.quantile(0.99));
    EXPECT_DOUBLE_EQ(a.sum_result_quality, r->sum_result_quality);
  }
  EXPECT_GT(a.gray_episodes, 3u);  // the trace added episodes of its own
}

TEST(ClusterGray, DisabledKnobsAreByteIdentical) {
  auto plain = gray_cluster();
  plain.gray = {};
  const auto base = cloud::simulate_cluster(plain);

  // Every severity/detection field tweaked, every enable bit off.
  auto tweaked = plain;
  tweaked.gray.slow_factor_min = 2.0;
  tweaked.gray.spike_prob = 0.9;
  tweaked.gray.burst_severity = 3.0;
  tweaked.policy.gray = cluster_det_policy();
  tweaked.policy.gray.enabled = false;
  const auto r = cloud::simulate_cluster(tweaked);
  EXPECT_EQ(base.queries, r.queries);
  EXPECT_EQ(base.ok_queries, r.ok_queries);
  EXPECT_EQ(base.degraded_queries, r.degraded_queries);
  EXPECT_EQ(base.failed_queries, r.failed_queries);
  EXPECT_EQ(base.timeouts, r.timeouts);
  EXPECT_EQ(base.retries, r.retries);
  EXPECT_EQ(base.leaf_requests, r.leaf_requests);
  EXPECT_EQ(base.answered_per_window, r.answered_per_window);
  EXPECT_DOUBLE_EQ(base.query_ms.quantile(0.99), r.query_ms.quantile(0.99));
  EXPECT_DOUBLE_EQ(base.sum_result_quality, r.sum_result_quality);
  EXPECT_EQ(r.gray_episodes, 0u);
  EXPECT_EQ(r.gray_evictions, 0u);
}

TEST(ClusterGray, MergeSumsGrayTelemetry) {
  ClusterResult a;
  a.trials = 1;
  a.gray_episodes = 2;
  a.gray_dropped_replies = 10;
  a.gray_evictions = 3;
  a.gray_probations = 2;
  a.gray_zombies = 1;
  a.gray_redirected_sends = 50;
  a.adaptive_deadline_ms = 10.0;

  ClusterResult b;
  b.trials = 3;
  b.gray_episodes = 4;
  b.gray_dropped_replies = 5;
  b.gray_evictions = 1;
  b.gray_probations = 1;
  b.gray_zombies = 0;
  b.gray_redirected_sends = 25;
  b.adaptive_deadline_ms = 20.0;

  a.merge(b);
  EXPECT_EQ(a.trials, 4u);
  EXPECT_EQ(a.gray_episodes, 6u);
  EXPECT_EQ(a.gray_dropped_replies, 15u);
  EXPECT_EQ(a.gray_evictions, 4u);
  EXPECT_EQ(a.gray_probations, 3u);
  EXPECT_EQ(a.gray_zombies, 1u);
  EXPECT_EQ(a.gray_redirected_sends, 75u);
  // Trial-weighted average: (10 x 1 + 20 x 3) / 4.
  EXPECT_DOUBLE_EQ(a.adaptive_deadline_ms, 17.5);
}

}  // namespace
}  // namespace arch21
