// Tests for the MESI snooping protocol: every canonical transition,
// transaction accounting, protocol invariants under random stress, and
// the false-sharing pathology.

#include <gtest/gtest.h>

#include "energy/catalogue.hpp"
#include "mem/coherence.hpp"
#include "util/rng.hpp"

namespace arch21::mem {
namespace {

class MesiTest : public ::testing::Test {
 protected:
  energy::Catalogue cat;
  CacheConfig cfg{.size_bytes = 4096, .line_bytes = 64, .ways = 4};
};

TEST_F(MesiTest, FirstReadGetsExclusive) {
  CoherentSystem sys(4, cfg, cat);
  sys.read(0, 0x1000);
  EXPECT_EQ(sys.state(0, 0x1000), Mesi::Exclusive);
  EXPECT_EQ(sys.stats().bus_rd, 1u);
  EXPECT_TRUE(sys.invariants_hold());
}

TEST_F(MesiTest, SecondReaderDowngradesToShared) {
  CoherentSystem sys(4, cfg, cat);
  sys.read(0, 0x1000);
  sys.read(1, 0x1000);
  EXPECT_EQ(sys.state(0, 0x1000), Mesi::Shared);
  EXPECT_EQ(sys.state(1, 0x1000), Mesi::Shared);
  EXPECT_EQ(sys.stats().c2c_transfers, 1u);  // E supplier
  EXPECT_TRUE(sys.invariants_hold());
}

TEST_F(MesiTest, WriteOnExclusiveIsSilent) {
  CoherentSystem sys(2, cfg, cat);
  sys.read(0, 0x40);
  const auto upgrades_before = sys.stats().bus_upgr;
  sys.write(0, 0x40);
  EXPECT_EQ(sys.state(0, 0x40), Mesi::Modified);
  EXPECT_EQ(sys.stats().bus_upgr, upgrades_before);  // silent E->M
  EXPECT_EQ(sys.stats().write_hits, 1u);
}

TEST_F(MesiTest, WriteOnSharedUpgradesAndInvalidates) {
  CoherentSystem sys(3, cfg, cat);
  sys.read(0, 0x40);
  sys.read(1, 0x40);
  sys.read(2, 0x40);
  sys.write(1, 0x40);
  EXPECT_EQ(sys.state(1, 0x40), Mesi::Modified);
  EXPECT_EQ(sys.state(0, 0x40), Mesi::Invalid);
  EXPECT_EQ(sys.state(2, 0x40), Mesi::Invalid);
  EXPECT_EQ(sys.stats().bus_upgr, 1u);
  EXPECT_EQ(sys.stats().invalidations, 2u);
  EXPECT_TRUE(sys.invariants_hold());
}

TEST_F(MesiTest, ReadOfModifiedForcesFlushToShared) {
  CoherentSystem sys(2, cfg, cat);
  sys.write(0, 0x80);  // I -> M via BusRdX
  EXPECT_EQ(sys.stats().bus_rdx, 1u);
  sys.read(1, 0x80);
  EXPECT_EQ(sys.state(0, 0x80), Mesi::Shared);
  EXPECT_EQ(sys.state(1, 0x80), Mesi::Shared);
  EXPECT_GE(sys.stats().writebacks, 1u);
  EXPECT_GE(sys.stats().c2c_transfers, 1u);
  EXPECT_TRUE(sys.invariants_hold());
}

TEST_F(MesiTest, WriteInvalidatesModifiedElsewhere) {
  CoherentSystem sys(2, cfg, cat);
  sys.write(0, 0xC0);
  sys.write(1, 0xC0);
  EXPECT_EQ(sys.state(0, 0xC0), Mesi::Invalid);
  EXPECT_EQ(sys.state(1, 0xC0), Mesi::Modified);
  EXPECT_GE(sys.stats().writebacks, 1u);  // core 0's dirty copy flushed
  EXPECT_TRUE(sys.invariants_hold());
}

TEST_F(MesiTest, RepeatedPrivateAccessStaysLocal) {
  CoherentSystem sys(4, cfg, cat);
  sys.read(2, 0x2000);
  const auto bus_before = sys.stats().bus_rd + sys.stats().bus_rdx;
  for (int i = 0; i < 100; ++i) {
    sys.read(2, 0x2000);
    sys.write(2, 0x2000);
  }
  EXPECT_EQ(sys.stats().bus_rd + sys.stats().bus_rdx, bus_before);
  EXPECT_EQ(sys.stats().read_hits, 100u);
}

TEST_F(MesiTest, FalseSharingPingPong) {
  // Two cores write different words of the SAME line: every write
  // invalidates the other's copy -- the classic false-sharing storm.
  CoherentSystem sys(2, cfg, cat);
  for (int i = 0; i < 50; ++i) {
    sys.write(0, 0x100);       // word 0 of the line
    sys.write(1, 0x108);       // word 1 of the same line
  }
  EXPECT_GE(sys.stats().invalidations, 98u);
  EXPECT_GT(sys.stats().bus_energy_j, 0.0);
  // Same words on DIFFERENT lines: no invalidations after warmup.
  CoherentSystem calm(2, cfg, cat);
  for (int i = 0; i < 50; ++i) {
    calm.write(0, 0x100);
    calm.write(1, 0x180);
  }
  EXPECT_EQ(calm.stats().invalidations, 0u);
  EXPECT_LT(calm.stats().bus_energy_j, sys.stats().bus_energy_j);
}

TEST_F(MesiTest, StateOfUnknownLineIsInvalid) {
  CoherentSystem sys(2, cfg, cat);
  EXPECT_EQ(sys.state(0, 0xDEAD00), Mesi::Invalid);
}

TEST_F(MesiTest, ZeroCoresRejected) {
  EXPECT_THROW(CoherentSystem(0, cfg, cat), std::invalid_argument);
}

TEST_F(MesiTest, StateNames) {
  EXPECT_STREQ(to_string(Mesi::Modified), "M");
  EXPECT_STREQ(to_string(Mesi::Invalid), "I");
}

// Property: invariants hold after arbitrary random access sequences.
class MesiStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MesiStress, InvariantsHoldUnderRandomTraffic) {
  const energy::Catalogue cat;
  CoherentSystem sys(4, {.size_bytes = 1024, .line_bytes = 64, .ways = 2},
                     cat);
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const auto core = static_cast<std::uint32_t>(rng.below(4));
    const Addr addr = rng.below(64) * 64;  // 64 hot lines
    if (rng.chance(0.4)) {
      sys.write(core, addr);
    } else {
      sys.read(core, addr);
    }
    if (i % 500 == 0) {
      ASSERT_TRUE(sys.invariants_hold()) << "iteration " << i;
    }
  }
  EXPECT_TRUE(sys.invariants_hold());
  // Sanity: all four transaction classes occurred.
  EXPECT_GT(sys.stats().bus_rd, 0u);
  EXPECT_GT(sys.stats().bus_rdx, 0u);
  EXPECT_GT(sys.stats().invalidations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MesiStress,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace arch21::mem
