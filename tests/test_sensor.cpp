// Tests for the sensor platform: energy stores, intermittent execution,
// the compute-vs-communicate tradeoff, and approximate computing on the
// ECG/FIR workload.

#include <gtest/gtest.h>

#include <cmath>

#include "energy/catalogue.hpp"
#include "sensor/approx.hpp"
#include "sensor/battery.hpp"
#include "sensor/intermittent.hpp"
#include "sensor/tradeoff.hpp"

namespace arch21::sensor {
namespace {

TEST(Battery, DrawsAndDepletes) {
  Battery b(10.0);
  EXPECT_DOUBLE_EQ(b.draw(4.0), 4.0);
  EXPECT_DOUBLE_EQ(b.level_j(), 6.0);
  EXPECT_DOUBLE_EQ(b.draw(100.0), 6.0);  // partial supply
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.lifetime_s(1.0), 0.0);
  Battery c(3600.0);
  EXPECT_DOUBLE_EQ(c.lifetime_s(1.0), 3600.0);
}

TEST(Harvester, ChargesTowardCapAndLeaks) {
  HarvesterConfig cfg;
  cfg.power_w = 1e-3;
  cfg.p_active = 1.0;  // always harvesting
  cfg.cap_j = 5e-6;
  cfg.leak_w = 0;
  Harvester h(cfg, 1);
  for (int i = 0; i < 100; ++i) h.step(1e-3);
  EXPECT_DOUBLE_EQ(h.stored_j(), cfg.cap_j);  // clamped at capacity
  EXPECT_DOUBLE_EQ(h.draw(2e-6), 2e-6);
  EXPECT_NEAR(h.stored_j(), 3e-6, 1e-12);
}

TEST(Harvester, IntermittencyFollowsDutyCycle) {
  HarvesterConfig cfg;
  cfg.power_w = 1e-3;
  cfg.p_active = 0.25;
  cfg.cap_j = 1.0;  // effectively unbounded
  cfg.leak_w = 0;
  Harvester h(cfg, 2);
  double income = 0;
  const int steps = 100000;
  for (int i = 0; i < steps; ++i) income += h.step(1e-3);
  EXPECT_NEAR(income / (steps * 1e-3 * cfg.power_w), 0.25, 0.01);
}

TEST(Intermittent, CompletesWithAdequateHarvest) {
  IntermittentConfig cfg;
  cfg.work_units = 2000;
  cfg.harvester.power_w = 5e-3;
  cfg.harvester.p_active = 0.6;
  const auto r = run_intermittent(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.units_committed, cfg.work_units);
  EXPECT_GT(r.checkpoints, 0u);
}

TEST(Intermittent, StarvedHarvestTimesOut) {
  IntermittentConfig cfg;
  cfg.work_units = 100000;
  cfg.harvester.power_w = 1e-7;  // far below demand
  cfg.harvester.p_active = 0.05;
  cfg.max_sim_s = 50;
  const auto r = run_intermittent(cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_LT(r.units_committed, cfg.work_units);
}

TEST(Intermittent, PowerFailuresLoseUncommittedWork) {
  IntermittentConfig cfg;
  cfg.work_units = 5000;
  cfg.checkpoint_every = 500;          // long intervals: big loss windows
  cfg.harvester.power_w = 2e-3;
  cfg.harvester.p_active = 0.3;        // choppy supply
  cfg.harvester.cap_j = 40e-6;         // small buffer
  cfg.on_threshold_j = 25e-6;
  const auto r = run_intermittent(cfg);
  EXPECT_GT(r.power_failures, 0u);
  EXPECT_GT(r.wasted_energy_j, 0.0);
  EXPECT_GT(r.waste_fraction(), 0.0);
}

TEST(Intermittent, CheckpointIntervalTradeoff) {
  // Very frequent checkpoints burn energy on overhead; very rare ones
  // lose big windows to power failures.  The best interval is interior.
  IntermittentConfig cfg;
  cfg.work_units = 4000;
  cfg.harvester.power_w = 2e-3;
  cfg.harvester.p_active = 0.35;
  cfg.harvester.cap_j = 40e-6;
  cfg.on_threshold_j = 25e-6;
  const std::vector<std::uint64_t> candidates = {1, 10, 50, 200, 2000};
  const auto best = best_checkpoint_interval(cfg, candidates);
  EXPECT_GT(best.elapsed_s, 0.0);
  EXPECT_NE(best.interval, 1u);      // not the thrashing extreme
  EXPECT_NE(best.interval, 2000u);   // not the reckless extreme
}

TEST(Tradeoff, RadioDominatesRawTransmission) {
  const energy::Catalogue cat;
  StreamProfile s;
  const auto strategies = strategy_powers(s, cat);
  ASSERT_EQ(strategies.size(), 3u);
  EXPECT_EQ(strategies[0].name, "transmit-raw");
  // Raw transmission spends everything on the radio.
  EXPECT_EQ(strategies[0].compute_w, 0.0);
  EXPECT_GT(strategies[0].radio_w, 0.0);
}

TEST(Tradeoff, FilteringWinsAtHighReduction) {
  // The paper: "the energy required to communicate data often outweighs
  // that of computation" -- so spending ops to cut the radio stream wins.
  const energy::Catalogue cat;
  StreamProfile s;
  s.reduction_factor = 100;
  const auto strategies = strategy_powers(s, cat);
  EXPECT_LT(strategies[1].total_w, strategies[0].total_w);
  // At reduction factor 1 (filter transmits everything anyway) filtering
  // can only lose.
  s.reduction_factor = 1;
  const auto no_gain = strategy_powers(s, cat);
  EXPECT_GT(no_gain[1].total_w, no_gain[0].total_w);
}

TEST(Tradeoff, BreakevenFormulaConsistent) {
  const energy::Catalogue cat;
  StreamProfile s;
  const double r_star = filter_breakeven_reduction(s, cat);
  ASSERT_TRUE(std::isfinite(r_star));
  EXPECT_GT(r_star, 1.0);
  // Just above break-even filtering wins; just below it loses.
  s.reduction_factor = r_star * 1.1;
  EXPECT_LT(strategy_powers(s, cat)[1].total_w,
            strategy_powers(s, cat)[0].total_w);
  s.reduction_factor = r_star * 0.9;
  EXPECT_GT(strategy_powers(s, cat)[1].total_w,
            strategy_powers(s, cat)[0].total_w);
}

TEST(Tradeoff, ExpensiveComputeNeverBreaksEven) {
  const energy::Catalogue cat;
  StreamProfile s;
  s.ops_per_sample_filter = 1e9;  // absurd DSP cost
  EXPECT_TRUE(std::isinf(filter_breakeven_reduction(s, cat)));
}

TEST(Approx, SyntheticEcgHasBeats) {
  const auto x = synthetic_ecg(2500, 250, 1.2, 0.01, 3);
  // ~12 beats in 10 s at 1.2 Hz; peaks above 1.0 exist.
  int peaks = 0;
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    if (x[i] > 0.9 && x[i] >= x[i - 1] && x[i] >= x[i + 1]) ++peaks;
  }
  EXPECT_NEAR(peaks, 12, 3);
}

TEST(Approx, FirIsLowPass) {
  const auto h = lowpass_fir(31, 0.1);
  // Unity DC gain.
  double sum = 0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_THROW(lowpass_fir(0, 0.1), std::invalid_argument);
  EXPECT_THROW(lowpass_fir(31, 0.6), std::invalid_argument);
}

TEST(Approx, SnrIncreasesWithPrecision) {
  const auto x = synthetic_ecg(2048);
  const auto h = lowpass_fir(31, 0.12);
  const auto ref = fir_apply(x, h);
  double prev = -100;
  for (int bits : {4, 8, 12, 16, 20}) {
    const double snr = snr_db(ref, fir_apply_fixed(x, h, bits));
    EXPECT_GT(snr, prev) << bits << " bits";
    prev = snr;
  }
  // 20 fractional bits is effectively exact for this signal.
  EXPECT_GT(prev, 60.0);
}

TEST(Approx, PerforationDegradesGracefully) {
  const auto x = synthetic_ecg(2048);
  const auto h = lowpass_fir(31, 0.12);
  const auto ref = fir_apply(x, h);
  EXPECT_GT(snr_db(ref, fir_apply_perforated(x, h, 1)), 100.0);  // k=1 exact
  const double k2 = snr_db(ref, fir_apply_perforated(x, h, 2));
  const double k8 = snr_db(ref, fir_apply_perforated(x, h, 8));
  EXPECT_GT(k2, k8);
  EXPECT_GT(k2, 5.0);
  EXPECT_THROW(fir_apply_perforated(x, h, 0), std::invalid_argument);
}

TEST(Approx, EnergyModelShapes) {
  EXPECT_DOUBLE_EQ(mult_energy_rel(32), 1.0);
  EXPECT_DOUBLE_EQ(mult_energy_rel(16), 0.25);
  EXPECT_DOUBLE_EQ(mult_energy_rel(8), 1.0 / 16.0);
}

TEST(Approx, SweepParetoShape) {
  const auto rows = approx_sweep(2048, 3);
  ASSERT_GE(rows.size(), 12u);
  // Precision family: SNR and energy both rise with bits.
  double prev_snr = -1e9;
  double prev_e = 0;
  for (const auto& r : rows) {
    if (r.technique != "precision") continue;
    EXPECT_GE(r.snr_db, prev_snr);
    EXPECT_GE(r.energy_rel, prev_e);
    prev_snr = r.snr_db;
    prev_e = r.energy_rel;
  }
  // A mid-precision point gives usable SNR (> 20 dB) at < 1/4 the energy.
  bool sweet_spot = false;
  for (const auto& r : rows) {
    if (r.technique == "precision" && r.snr_db > 20 && r.energy_rel < 0.4) {
      sweet_spot = true;
    }
  }
  EXPECT_TRUE(sweet_spot);
}

TEST(Approx, SnrValidation) {
  EXPECT_THROW(snr_db({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(snr_db({}, {}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(snr_db({1, 2, 3}, {1, 2, 3}), 200.0);
}

}  // namespace
}  // namespace arch21::sensor
