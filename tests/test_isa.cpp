// Tests for the SR1 assembler and interpreter: syntax and error
// reporting, opcode semantics, control flow, memory, I/O, faults, and
// trace generation.

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/machine.hpp"
#include "isa/programs.hpp"

namespace arch21::isa {
namespace {

Machine run_ok(const std::string& src, std::uint64_t max = 1'000'000) {
  auto asmres = assemble(src);
  EXPECT_TRUE(asmres.ok()) << (asmres.errors.empty() ? "" : asmres.errors[0]);
  Machine m(asmres.program);
  EXPECT_EQ(m.run(max), StopReason::Halted);
  return m;
}

TEST(Assembler, EmptyAndComments) {
  const auto r = assemble("# just a comment\n\n   \n");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.program.code.empty());
}

TEST(Assembler, ReportsUnknownMnemonic) {
  const auto r = assemble("frobnicate r1, r2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("unknown mnemonic"), std::string::npos);
  EXPECT_NE(r.errors[0].find("line 1"), std::string::npos);
}

TEST(Assembler, ReportsBadRegisterAndImmediate) {
  EXPECT_FALSE(assemble("add r1, r2, r99\n").ok());
  EXPECT_FALSE(assemble("add r1, r2, x3\n").ok());
  EXPECT_FALSE(assemble("addi r1, r2, notanumber\n").ok());
  EXPECT_FALSE(assemble("add r1, r2\n").ok());  // missing operand
}

TEST(Assembler, ReportsUndefinedAndDuplicateLabels) {
  const auto r1 = assemble("jmp nowhere\nhalt\n");
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.errors[0].find("undefined label"), std::string::npos);
  const auto r2 = assemble("x:\nhalt\nx:\nhalt\n");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.errors[0].find("duplicate label"), std::string::npos);
}

TEST(Assembler, HexAndNegativeImmediates) {
  const auto m = run_ok("li r1, 0xff\nli r2, -5\nadd r3, r1, r2\nout r3\nhalt\n");
  EXPECT_EQ(m.output().at(0), 250u);
}

TEST(Assembler, DataDirective) {
  const auto r = assemble(".data 0x1122334455667788, 2\nhalt\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.program.data.size(), 16u);
  EXPECT_EQ(r.program.data[0], 0x88);
  EXPECT_EQ(r.program.data[7], 0x11);
  EXPECT_EQ(r.program.data[8], 0x02);
}

TEST(Assembler, LabelOnItsOwnLineAndInline) {
  const auto m = run_ok(R"(
    li r1, 1
here:
    addi r1, r1, 1
    slti r2, r1, 5
    bne r2, r0, here
    out r1
    halt
)");
  EXPECT_EQ(m.output().at(0), 5u);
}

TEST(Machine, R0IsAlwaysZero) {
  const auto m = run_ok("li r0, 99\nadd r0, r0, r0\nout r0\nhalt\n");
  EXPECT_EQ(m.output().at(0), 0u);
}

TEST(Machine, AluSemantics) {
  const auto m = run_ok(R"(
    li r1, 12
    li r2, 5
    add r3, r1, r2
    sub r4, r1, r2
    mul r5, r1, r2
    div r6, r1, r2
    and r7, r1, r2
    or  r8, r1, r2
    xor r9, r1, r2
    out r3
    out r4
    out r5
    out r6
    out r7
    out r8
    out r9
    halt
)");
  const auto& o = m.output();
  EXPECT_EQ(o[0], 17u);
  EXPECT_EQ(o[1], 7u);
  EXPECT_EQ(o[2], 60u);
  EXPECT_EQ(o[3], 2u);
  EXPECT_EQ(o[4], 4u);
  EXPECT_EQ(o[5], 13u);
  EXPECT_EQ(o[6], 9u);
}

TEST(Machine, ShiftsAndComparisons) {
  const auto m = run_ok(R"(
    li r1, 1
    shli r2, r1, 10
    shri r3, r2, 3
    li r4, -1
    slt r5, r4, r1      # signed: -1 < 1 -> 1
    slti r6, r1, -3     # 1 < -3 -> 0
    out r2
    out r3
    out r5
    out r6
    halt
)");
  EXPECT_EQ(m.output()[0], 1024u);
  EXPECT_EQ(m.output()[1], 128u);
  EXPECT_EQ(m.output()[2], 1u);
  EXPECT_EQ(m.output()[3], 0u);
}

TEST(Machine, LoadStoreWordAndByte) {
  const auto m = run_ok(R"(
    li r1, 0x2000
    li r2, 0x1122334455667788
    st r2, r1, 0
    ld r3, r1, 0
    ldb r4, r1, 7       # top byte, little-endian
    li r5, 0xAB
    stb r5, r1, 0
    ldb r6, r1, 0
    out r3
    out r4
    out r6
    halt
)");
  EXPECT_EQ(m.output()[0], 0x1122334455667788u);
  EXPECT_EQ(m.output()[1], 0x11u);
  EXPECT_EQ(m.output()[2], 0xABu);
}

TEST(Machine, DataImageVisible) {
  const auto r = assemble(".data 777\nli r1, 0x1000\nld r2, r1, 0\nout r2\nhalt\n");
  ASSERT_TRUE(r.ok());
  Machine m(r.program);
  EXPECT_EQ(m.run(), StopReason::Halted);
  EXPECT_EQ(m.output()[0], 777u);
}

TEST(Machine, JalAndJrImplementCalls) {
  const auto m = run_ok(R"(
    jal r15, func
    out r1
    halt
func:
    li r1, 42
    jr r15
)");
  EXPECT_EQ(m.output()[0], 42u);
}

TEST(Machine, BranchVariants) {
  const auto m = run_ok(R"(
    li r1, 3
    li r2, 3
    beq r1, r2, eq_ok
    out r0
    halt
eq_ok:
    li r3, -2
    blt r3, r1, lt_ok
    out r0
    halt
lt_ok:
    bge r1, r2, ge_ok
    out r0
    halt
ge_ok:
    li r4, 1
    out r4
    halt
)");
  EXPECT_EQ(m.output().at(0), 1u);
}

TEST(Machine, InputQueueFifo) {
  auto r = assemble("in r1\nin r2\nsub r3, r1, r2\nout r3\nhalt\n");
  ASSERT_TRUE(r.ok());
  Machine m(r.program);
  m.push_input(10);
  m.push_input(4);
  EXPECT_EQ(m.run(), StopReason::Halted);
  EXPECT_EQ(m.output()[0], 6u);
  // Exhausted input reads zero.
  Machine m2(r.program);
  EXPECT_EQ(m2.run(), StopReason::Halted);
  EXPECT_EQ(m2.output()[0], 0u);
}

TEST(Machine, Faults) {
  {
    auto r = assemble("li r1, 0\nli r2, 5\ndiv r3, r2, r1\nhalt\n");
    Machine m(r.program);
    EXPECT_EQ(m.run(), StopReason::DivideByZero);
  }
  {
    auto r = assemble("li r1, 0xffffffffff\nld r2, r1, 0\nhalt\n");
    Machine m(r.program);
    EXPECT_EQ(m.run(), StopReason::MemoryFault);
  }
  {
    auto r = assemble("li r1, 12345\njr r1\nhalt\n");
    Machine m(r.program);
    EXPECT_EQ(m.run(), StopReason::BadJump);
  }
  {
    auto r = assemble("loop: jmp loop\n");
    Machine m(r.program);
    EXPECT_EQ(m.run(1000), StopReason::CycleLimit);
    EXPECT_EQ(m.stats().instructions, 1000u);
  }
}

TEST(Machine, StatsCountClasses) {
  const auto m = run_ok(R"(
    li r1, 0x2000
    st r1, r1, 0
    ld r2, r1, 0
    add r3, r2, r2
    beq r0, r0, end
end:
    halt
)");
  EXPECT_EQ(m.stats().loads, 1u);
  EXPECT_EQ(m.stats().stores, 1u);
  EXPECT_GE(m.stats().alu_ops, 1u);
  EXPECT_EQ(m.stats().branches, 1u);
  EXPECT_EQ(m.stats().taken_branches, 1u);
}

TEST(Machine, TraceSinkSeesMemoryOps) {
  auto r = assemble(programs::stride_walk(0x1000, 64, 10));
  ASSERT_TRUE(r.ok());
  Machine m(r.program);
  std::vector<TraceRecord> trace;
  m.set_trace_sink([&](TraceRecord t) { trace.push_back(t); });
  EXPECT_EQ(m.run(), StopReason::Halted);
  ASSERT_EQ(trace.size(), 10u);
  EXPECT_EQ(trace[0].addr, 0x1000u);
  EXPECT_EQ(trace[1].addr, 0x1040u);
  EXPECT_FALSE(trace[0].write);
}

TEST(Programs, SumLoopComputesGauss) {
  auto r = assemble(programs::sum_loop(100));
  ASSERT_TRUE(r.ok());
  Machine m(r.program);
  EXPECT_EQ(m.run(), StopReason::Halted);
  EXPECT_EQ(m.output().at(0), 5050u);
}

TEST(Programs, SanitizedDispatchSelectsHandlers) {
  for (std::uint64_t idx : {0ull, 1ull}) {
    auto r = assemble(programs::sanitized_dispatch());
    ASSERT_TRUE(r.ok());
    Machine m(r.program);
    m.push_input(idx);
    EXPECT_EQ(m.run(), StopReason::Halted);
    ASSERT_EQ(m.output().size(), 1u);
    EXPECT_EQ(m.output()[0], idx == 0 ? 100u : 200u);
  }
  // Out-of-range index hits the bounds check and halts silently.
  auto r = assemble(programs::sanitized_dispatch());
  Machine m(r.program);
  m.push_input(7);
  EXPECT_EQ(m.run(), StopReason::Halted);
  EXPECT_TRUE(m.output().empty());
}

TEST(OpMetadata, WritesRdClassification) {
  EXPECT_TRUE(writes_rd(Op::Add));
  EXPECT_TRUE(writes_rd(Op::Ld));
  EXPECT_TRUE(writes_rd(Op::In));
  EXPECT_TRUE(writes_rd(Op::Jal));
  EXPECT_FALSE(writes_rd(Op::St));
  EXPECT_FALSE(writes_rd(Op::Out));
  EXPECT_FALSE(writes_rd(Op::Beq));
  EXPECT_FALSE(writes_rd(Op::Halt));
}

TEST(OpMetadata, Names) {
  EXPECT_STREQ(to_string(Op::Add), "add");
  EXPECT_STREQ(to_string(Op::Halt), "halt");
  EXPECT_STREQ(to_string(StopReason::Halted), "halted");
  EXPECT_STREQ(to_string(StopReason::DiftTrap), "dift-trap");
}

}  // namespace
}  // namespace arch21::isa
