// Tests for the energy module: catalogue scaling across every node,
// distance-ladder ordering, power budgets, and ladder assessment edges.

#include <gtest/gtest.h>

#include "energy/budget.hpp"
#include "energy/catalogue.hpp"
#include "energy/ladder.hpp"
#include "tech/node.hpp"

namespace arch21::energy {
namespace {

TEST(Catalogue, ReferenceValuesInLiteratureBand) {
  const Catalogue cat;  // 45 nm
  EXPECT_EQ(cat.node_name(), "45nm");
  // Keckler/Horowitz-era sanity: DP FMA tens of pJ; DRAM word ~ nJ.
  EXPECT_GT(cat.fp_fma(), 10e-12);
  EXPECT_LT(cat.fp_fma(), 100e-12);
  EXPECT_GT(cat.access(Level::Dram), 1e-9);
  EXPECT_LT(cat.access(Level::Dram), 10e-9);
  EXPECT_LT(cat.int_op(), cat.fp_fma());
  EXPECT_LT(cat.int8_mac(), cat.int_op());
}

TEST(Catalogue, DistanceLadderStrictlyOrdered) {
  const Catalogue cat;
  const Distance order[] = {Distance::OnChip1mm, Distance::AcrossChip,
                            Distance::ToStackedDram, Distance::ToDram,
                            Distance::Rack, Distance::Datacenter,
                            Distance::SensorRadio};
  for (std::size_t i = 1; i < std::size(order); ++i) {
    EXPECT_LT(cat.move_per_bit(order[i - 1]), cat.move_per_bit(order[i]))
        << to_string(order[i - 1]) << " vs " << to_string(order[i]);
  }
  // move() is linear in bits.
  EXPECT_DOUBLE_EQ(cat.move(Distance::Board, 128),
                   2 * cat.move(Distance::Board, 64));
}

TEST(Catalogue, EveryNodeScalesMonotonically) {
  // Walking the node table newest-ward, logic energies fall monotonically
  // and the radio never changes.
  double prev_fma = 1e9;
  double prev_l1 = 1e9;
  const double radio45 =
      Catalogue{}.move_per_bit(Distance::SensorRadio);
  for (const auto& n : tech::node_table()) {
    const Catalogue cat(n);
    EXPECT_LT(cat.fp_fma(), prev_fma) << n.name;
    EXPECT_LT(cat.access(Level::L1), prev_l1) << n.name;
    EXPECT_DOUBLE_EQ(cat.move_per_bit(Distance::SensorRadio), radio45)
        << n.name;
    prev_fma = cat.fp_fma();
    prev_l1 = cat.access(Level::L1);
  }
}

TEST(Catalogue, FetchRatioWellDefinedEverywhere) {
  for (const auto& n : tech::node_table()) {
    const Catalogue cat(n);
    EXPECT_GT(cat.fetch_to_compute_ratio(Level::Dram), 1.0) << n.name;
    EXPECT_LT(cat.fetch_to_compute_ratio(Level::RegisterFile), 1.0)
        << n.name;
  }
}

TEST(Catalogue, LevelNames) {
  EXPECT_STREQ(to_string(Level::RegisterFile), "regfile");
  EXPECT_STREQ(to_string(Level::Dram), "DRAM");
  EXPECT_STREQ(to_string(Distance::SensorRadio), "sensor radio");
}

TEST(Budget, TracksComponentsAndHeadroom) {
  PowerBudget b("soc", 10.0);
  EXPECT_TRUE(b.add("cpu", 4.0));
  EXPECT_TRUE(b.add("gpu", 5.0));
  EXPECT_NEAR(b.headroom(), 1.0, 1e-12);
  EXPECT_NEAR(b.utilization(), 0.9, 1e-12);
  EXPECT_FALSE(b.add("modem", 2.0));  // now over
  EXPECT_FALSE(b.fits());
  ASSERT_NE(b.dominant(), nullptr);
  EXPECT_EQ(b.dominant()->name, "gpu");
  EXPECT_TRUE(b.remove("modem"));
  EXPECT_TRUE(b.fits());
  EXPECT_FALSE(b.remove("nonexistent"));
  EXPECT_EQ(b.components().size(), 2u);
}

TEST(Budget, Validation) {
  EXPECT_THROW(PowerBudget("x", 0.0), std::invalid_argument);
  PowerBudget b("x", 1.0);
  EXPECT_THROW(b.add("neg", -1.0), std::invalid_argument);
  EXPECT_EQ(b.dominant(), nullptr);
}

TEST(Ladder, RungsSpanTwelveOrdersOfMagnitude) {
  const auto& rungs = ladder();
  EXPECT_DOUBLE_EQ(rungs.front().target_ops, 1e9);
  EXPECT_DOUBLE_EQ(rungs.back().target_ops, 1e18);
  EXPECT_DOUBLE_EQ(rungs.front().power_cap_w, 1e-2);
  EXPECT_DOUBLE_EQ(rungs.back().power_cap_w, 1e7);
  // The paper's stated 2012 mobile baseline sits ~10x below the rung.
  const auto a = assess(rungs[1], kBaselineOpsPerWatt2012);
  EXPECT_NEAR(a.gap, 10.0, 1e-9);
}

TEST(Ladder, AssessEdgeCases) {
  const auto& rung = ladder()[0];
  EXPECT_FALSE(assess(rung, 0.0).met);
  EXPECT_TRUE(assess(rung, 1e11).met);
  EXPECT_TRUE(assess(rung, 1e12).met);
  EXPECT_NEAR(assess(rung, 1e12).gap, 0.1, 1e-12);
}

}  // namespace
}  // namespace arch21::energy
