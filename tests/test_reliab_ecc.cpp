// Exhaustive verification of the SECDED codec: every single-bit error in
// every position is corrected; every double-bit error is detected, never
// miscorrected into silent corruption.

#include <gtest/gtest.h>

#include "reliab/ecc.hpp"
#include "util/rng.hpp"

namespace arch21::reliab {
namespace {

const std::uint64_t kPatterns[] = {
    0x0000000000000000ull, 0xffffffffffffffffull, 0xdeadbeefcafebabeull,
    0x5555555555555555ull, 0xaaaaaaaaaaaaaaaaull, 0x0000000000000001ull,
    0x8000000000000000ull, 0x0123456789abcdefull,
};

TEST(Ecc, CleanCodewordDecodesOk) {
  for (const auto data : kPatterns) {
    const auto cw = ecc_encode(data);
    const auto d = ecc_decode(cw);
    EXPECT_EQ(d.status, EccStatus::Ok);
    EXPECT_EQ(d.data, data);
  }
}

TEST(Ecc, EncodeIsDeterministic) {
  const auto a = ecc_encode(0x1234);
  const auto b = ecc_encode(0x1234);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.check, b.check);
}

TEST(Ecc, DistinctDataGetsDistinctChecksUsually) {
  // Not a code property per se, but a smoke check that check bits depend
  // on the data.
  EXPECT_NE(ecc_encode(0).check, ecc_encode(1).check);
}

TEST(Ecc, EverySingleBitErrorCorrected) {
  for (const auto data : kPatterns) {
    const auto cw = ecc_encode(data);
    for (unsigned pos = 0; pos < 72; ++pos) {
      const auto corrupted = flip_bit(cw, pos);
      const auto d = ecc_decode(corrupted);
      ASSERT_EQ(d.status, EccStatus::Corrected)
          << "data=" << std::hex << data << " pos=" << std::dec << pos;
      ASSERT_EQ(d.data, data)
          << "data=" << std::hex << data << " pos=" << std::dec << pos;
    }
  }
}

TEST(Ecc, EveryDoubleBitErrorDetected) {
  for (const auto data : {kPatterns[0], kPatterns[2], kPatterns[7]}) {
    const auto cw = ecc_encode(data);
    for (unsigned p1 = 0; p1 < 72; ++p1) {
      for (unsigned p2 = p1 + 1; p2 < 72; ++p2) {
        const auto corrupted = flip_bit(flip_bit(cw, p1), p2);
        const auto d = ecc_decode(corrupted);
        ASSERT_EQ(d.status, EccStatus::DoubleError)
            << "data=" << std::hex << data << " p1=" << std::dec << p1
            << " p2=" << p2;
      }
    }
  }
}

TEST(Ecc, FlipBitIsInvolution) {
  const auto cw = ecc_encode(0xfeedface);
  for (unsigned pos = 0; pos < 72; ++pos) {
    const auto twice = flip_bit(flip_bit(cw, pos), pos);
    EXPECT_EQ(twice.data, cw.data);
    EXPECT_EQ(twice.check, cw.check);
  }
}

TEST(Ecc, FlipBitOutOfRangeIsNoop) {
  const auto cw = ecc_encode(1);
  const auto same = flip_bit(cw, 72);
  EXPECT_EQ(same.data, cw.data);
  EXPECT_EQ(same.check, cw.check);
}

TEST(Ecc, StatusNames) {
  EXPECT_STREQ(to_string(EccStatus::Ok), "ok");
  EXPECT_STREQ(to_string(EccStatus::Corrected), "corrected");
  EXPECT_STREQ(to_string(EccStatus::DoubleError), "double-error");
}

// Property over random data: single flips always corrected, double flips
// always detected.
class EccRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EccRandomProperty, RandomDataRandomFlips) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t data = rng.next();
    const auto cw = ecc_encode(data);
    const auto p1 = static_cast<unsigned>(rng.below(72));
    {
      const auto d = ecc_decode(flip_bit(cw, p1));
      ASSERT_EQ(d.status, EccStatus::Corrected);
      ASSERT_EQ(d.data, data);
    }
    auto p2 = static_cast<unsigned>(rng.below(72));
    while (p2 == p1) p2 = static_cast<unsigned>(rng.below(72));
    {
      const auto d = ecc_decode(flip_bit(flip_bit(cw, p1), p2));
      ASSERT_EQ(d.status, EccStatus::DoubleError);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EccRandomProperty,
                         ::testing::Values(3, 14, 159, 2653));

}  // namespace
}  // namespace arch21::reliab
