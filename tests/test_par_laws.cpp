// Tests for the speedup laws: Amdahl/Gustafson limits and the Hill-Marty
// multicore-era family, including the relationships the original paper
// proves (dynamic >= asymmetric >= symmetric, convergence to Amdahl).

#include <gtest/gtest.h>

#include <cmath>

#include "par/laws.hpp"

namespace arch21::par {
namespace {

TEST(Amdahl, KnownValuesAndLimits) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(0.0, 64), 1.0);     // all serial
  EXPECT_DOUBLE_EQ(amdahl_speedup(1.0, 64), 64.0);    // all parallel
  EXPECT_NEAR(amdahl_speedup(0.5, 1e12), 2.0, 1e-6);  // 1/(1-f) ceiling
  EXPECT_NEAR(amdahl_speedup(0.9, 10), 1.0 / (0.1 + 0.09), 1e-12);
}

TEST(Amdahl, MonotoneInPAndF) {
  double prev = 0;
  for (double p = 1; p <= 1024; p *= 2) {
    const double s = amdahl_speedup(0.95, p);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_LT(amdahl_speedup(0.5, 64), amdahl_speedup(0.9, 64));
  EXPECT_THROW(amdahl_speedup(1.1, 2), std::invalid_argument);
  EXPECT_THROW(amdahl_speedup(0.5, 0.5), std::invalid_argument);
}

TEST(Gustafson, ScaledSpeedupLinearInP) {
  EXPECT_DOUBLE_EQ(gustafson_speedup(1.0, 100), 100.0);
  EXPECT_DOUBLE_EQ(gustafson_speedup(0.0, 100), 1.0);
  EXPECT_NEAR(gustafson_speedup(0.9, 100), 0.1 + 90.0, 1e-12);
  // Gustafson always >= Amdahl for same f, p.
  for (double f : {0.5, 0.9, 0.99}) {
    EXPECT_GE(gustafson_speedup(f, 256), amdahl_speedup(f, 256));
  }
}

TEST(HillMarty, SymmetricWithUnitCoresIsAmdahl) {
  for (double f : {0.5, 0.9, 0.99}) {
    for (double n : {16.0, 64.0, 256.0}) {
      EXPECT_NEAR(hm_symmetric(f, n, 1), amdahl_speedup(f, n), 1e-9);
    }
  }
}

TEST(HillMarty, SingleBigCoreIsPollack) {
  // r = n: one core, speedup = sqrt(n) regardless of f.
  EXPECT_NEAR(hm_symmetric(0.5, 64, 64), 8.0, 1e-9);
  EXPECT_NEAR(hm_symmetric(0.99, 64, 64), 8.0, 1e-9);
}

TEST(HillMarty, DynamicDominatesAsymmetricDominatesSymmetric) {
  for (double f : {0.5, 0.9, 0.975, 0.99, 0.999}) {
    for (double n : {16.0, 64.0, 256.0, 1024.0}) {
      const double sym = hm_symmetric_best(f, n).speedup;
      double asym = 0;
      for (double r = 1; r <= n; r *= 2) {
        asym = std::max(asym, hm_asymmetric(f, n, r));
      }
      const double dyn = hm_dynamic(f, n);
      EXPECT_GE(asym, sym - 1e-9) << "f=" << f << " n=" << n;
      EXPECT_GE(dyn, asym - 1e-9) << "f=" << f << " n=" << n;
    }
  }
}

TEST(HillMarty, BestSymmetricCoreGrowsWithSerialFraction) {
  // More serial work favors beefier cores.
  const auto high_f = hm_symmetric_best(0.999, 256);
  const auto low_f = hm_symmetric_best(0.5, 256);
  EXPECT_LE(high_f.r, low_f.r);
  // With f = 0.5, the best organization is nearly one big core.
  EXPECT_GE(low_f.r, 64);
}

TEST(HillMarty, CorePerfIsPollack) {
  EXPECT_DOUBLE_EQ(core_perf(1), 1.0);
  EXPECT_DOUBLE_EQ(core_perf(16), 4.0);
  EXPECT_THROW(core_perf(0.5), std::invalid_argument);
}

TEST(HillMarty, ParameterValidation) {
  EXPECT_THROW(hm_symmetric(0.9, 16, 32), std::invalid_argument);
  EXPECT_THROW(hm_symmetric(0.9, 16, 0.5), std::invalid_argument);
  EXPECT_THROW(hm_asymmetric(2.0, 16, 4), std::invalid_argument);
  EXPECT_THROW(hm_dynamic(0.9, 0.5), std::invalid_argument);
}

TEST(HillMarty, SweepRowsConsistent) {
  const auto rows = hm_sweep(0.99, {16, 64, 256});
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].asymmetric, rows[i].symmetric - 1e-9);
    EXPECT_GE(rows[i].dynamic, rows[i].asymmetric - 1e-9);
    if (i > 0) {
      EXPECT_GT(rows[i].dynamic, rows[i - 1].dynamic);
    }
  }
}

// Property: speedups bounded by both n and the Amdahl ceiling scaled by
// the biggest core's perf.
class HmBoundsProperty : public ::testing::TestWithParam<double> {};

TEST_P(HmBoundsProperty, SpeedupsWithinTheoreticalBounds) {
  const double f = GetParam();
  for (double n : {4.0, 16.0, 64.0, 256.0}) {
    for (double r = 1; r <= n; r *= 4) {
      const double s = hm_symmetric(f, n, r);
      EXPECT_GT(s, 0);
      EXPECT_LE(s, n + 1e-9);  // can't beat n base-cores of work
      const double a = hm_asymmetric(f, n, r);
      EXPECT_LE(a, core_perf(r) + (n - r) + 1e-9);
    }
    EXPECT_LE(hm_dynamic(f, n), n + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, HmBoundsProperty,
                         ::testing::Values(0.1, 0.5, 0.9, 0.99, 0.999));

}  // namespace
}  // namespace arch21::par
