// Tests for the discrete-event kernel and the queued Resource: event
// ordering, tie-breaking, time bounds, M/M/1 behaviour, and the
// no-heap-allocation guarantee for small scheduled closures.

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <stdexcept>
#include <vector>

#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "util/inline_function.hpp"
#include "util/rng.hpp"

namespace arch21::des {
namespace {

TEST(Simulator, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(10.0, [&] { ++fired; });
  const auto ran = sim.run(5.0);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule(1.0, chain);
  };
  sim.schedule(1.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 100.0);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Resource, RequiresServers) {
  Simulator sim;
  EXPECT_THROW(Resource(sim, 0), std::invalid_argument);
}

TEST(Resource, ServesImmediatelyWhenFree) {
  Simulator sim;
  Resource r(sim, 1);
  double wait = -1;
  double total = -1;
  r.request(2.0, [&](Time w, Time t) {
    wait = w;
    total = t;
  });
  sim.run();
  EXPECT_EQ(wait, 0.0);
  EXPECT_EQ(total, 2.0);
  EXPECT_EQ(r.completed(), 1u);
}

TEST(Resource, QueuesWhenBusyFifo) {
  Simulator sim;
  Resource r(sim, 1);
  std::vector<int> done;
  r.request(1.0, [&](Time, Time) { done.push_back(1); });
  r.request(1.0, [&](Time w, Time) {
    done.push_back(2);
    EXPECT_EQ(w, 1.0);
  });
  r.request(1.0, [&](Time w, Time) {
    done.push_back(3);
    EXPECT_EQ(w, 2.0);
  });
  EXPECT_EQ(r.queue_length(), 2u);
  sim.run();
  EXPECT_EQ(done, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Resource, MultipleServersRunInParallel) {
  Simulator sim;
  Resource r(sim, 3);
  int done = 0;
  for (int i = 0; i < 3; ++i) r.request(5.0, [&](Time w, Time) {
    ++done;
    EXPECT_EQ(w, 0.0);
  });
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(sim.now(), 5.0);
  EXPECT_EQ(r.busy_time(), 15.0);
}

TEST(Simulator, SmallActionsDoNotHeapAllocate) {
  // The whole point of InlineFunction-backed events: scheduling closures
  // up to Action::capacity() bytes must never touch the heap (with the
  // event vector pre-reserved so heap growth is out of the picture too).
  Simulator sim;
  sim.reserve(1024);
  int fired = 0;
  double acc = 0;
  const auto before = arch21::inline_function_heap_allocations();
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(static_cast<Time>(i + 1), [&fired, &acc, i] {
      ++fired;
      acc += i;
    });
  }
  sim.run();
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(arch21::inline_function_heap_allocations(), before);
}

TEST(Simulator, OversizedActionFallsBackToHeap) {
  Simulator sim;
  std::array<char, 96> big{};
  big[3] = 1;
  static_assert(sizeof(big) > Simulator::Action::capacity());
  int out = 0;
  const auto before = arch21::inline_function_heap_allocations();
  sim.schedule(1.0, [big, &out] { out = big[3]; });
  EXPECT_EQ(arch21::inline_function_heap_allocations(), before + 1);
  sim.run();
  EXPECT_EQ(out, 1);
}

TEST(Resource, CompletionEventsStayInline) {
  // Resource's completion closure captures only (this, slot, epoch) --
  // the per-job callback lives in the slot -- so it fits well inside the
  // 56-byte Action; a queued M/M/1-style run must not allocate per event.
  Simulator sim;
  sim.reserve(256);
  Resource r(sim, 1);
  arch21::Rng rng(5);
  double t = 0;
  int done = 0;
  std::function<void(Time, Time)> cb = [&done](Time, Time) { ++done; };
  for (int i = 0; i < 100; ++i) {
    t += rng.exponential(1.0);
    const double s = rng.exponential(0.8);
    sim.schedule_at(t, [&r, s, cb] { r.request(s, cb); });
  }
  const auto before = arch21::inline_function_heap_allocations();
  sim.run();
  EXPECT_EQ(done, 100);
  EXPECT_EQ(r.completed(), 100u);
  EXPECT_EQ(arch21::inline_function_heap_allocations(), before);
}

TEST(Simulator, CancelledEventsNeverFire) {
  Simulator sim;
  int fired = 0;
  const auto h1 = sim.schedule_cancellable(1.0, [&] { ++fired; });
  const auto h2 = sim.schedule_cancellable(2.0, [&] { ++fired; });
  sim.schedule(3.0, [&] { ++fired; });
  ASSERT_TRUE(h1.valid());
  EXPECT_TRUE(sim.cancel(h1));
  EXPECT_FALSE(sim.cancel(h1));  // double-cancel is a no-op
  sim.run();
  EXPECT_EQ(fired, 2);  // h2 and the plain event
  EXPECT_EQ(sim.cancelled(), 1u);
  EXPECT_EQ(sim.executed(), 2u);  // cancelled events are not "executed"
  // A handle whose event already fired cannot be cancelled.
  EXPECT_FALSE(sim.cancel(h2));
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, CancelledEventDoesNotAdvanceClock) {
  Simulator sim;
  const auto h = sim.schedule_cancellable(10.0, [] {});
  sim.schedule(2.0, [] {});
  sim.cancel(h);
  sim.run();
  // The cancelled event at t=10 is discarded without moving `now`.
  EXPECT_EQ(sim.now(), 2.0);
}

TEST(Simulator, CancelSurvivesEventQueueReallocation) {
  // Handles are sequence numbers, not pointers: growing the event vector
  // (and its side table) between schedule and cancel must not invalidate
  // them.
  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(
        sim.schedule_cancellable(100.0 + i, [&fired] { ++fired; }));
  }
  for (int i = 0; i < 4096; ++i) {  // force several heap regrowths
    sim.schedule(1.0 + i, [] {});
  }
  for (int i = 0; i < 64; i += 2) EXPECT_TRUE(sim.cancel(handles[i]));
  sim.run();
  EXPECT_EQ(fired, 32);
  EXPECT_EQ(sim.cancelled(), 32u);
}

TEST(Simulator, CancellationIsDeterministicAcrossReserveSizes) {
  // Same schedule/cancel program under different initial reserves must
  // produce identical firing orders and final clocks.
  auto run = [](std::size_t reserve) {
    Simulator sim;
    if (reserve > 0) sim.reserve(reserve);
    arch21::Rng rng(99);
    std::vector<int> order;
    std::vector<EventHandle> hs;
    for (int i = 0; i < 200; ++i) {
      const double t = rng.uniform(0.0, 100.0);
      hs.push_back(sim.schedule_cancellable(t, [&order, i] {
        order.push_back(i);
      }));
    }
    for (int i = 0; i < 200; i += 3) sim.cancel(hs[i]);
    sim.run();
    order.push_back(static_cast<int>(sim.executed()));
    order.push_back(static_cast<int>(sim.cancelled()));
    return order;
  };
  const auto a = run(0);
  const auto b = run(64);
  const auto c = run(4096);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(Resource, FailAllDropsQueueAndInFlightWork) {
  Simulator sim;
  Resource r(sim, 2);
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    r.request(10.0, [&](Time, Time) { ++completed; });
  }
  EXPECT_EQ(r.queue_length(), 3u);
  sim.schedule(4.0, [&] { EXPECT_EQ(r.fail_all(), 5u); });
  sim.run();
  // No completion callback ever fires for dropped work, and the stale
  // completion events are absorbed without effect.
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(r.completed(), 0u);
  EXPECT_EQ(r.dropped(), 5u);
  EXPECT_EQ(r.queue_length(), 0u);
  // Busy time only counts the service actually rendered before failure:
  // two servers, 4 time units each.
  EXPECT_DOUBLE_EQ(r.busy_time(), 8.0);
}

TEST(Resource, UsableAgainAfterFailAll) {
  Simulator sim;
  Resource r(sim, 1);
  r.request(10.0, nullptr);
  sim.schedule(1.0, [&] { r.fail_all(); });
  sim.schedule(2.0, [&] { r.request(3.0, nullptr); });
  sim.run();
  EXPECT_EQ(r.completed(), 1u);
  EXPECT_EQ(r.dropped(), 1u);
  // The dropped job's stale completion event still pops at t=10 (lazy
  // discard: it advances the clock but is absorbed without effect).
  EXPECT_EQ(sim.now(), 10.0);
  EXPECT_DOUBLE_EQ(r.busy_time(), 4.0);  // 1 rendered + 3 full
}

TEST(Resource, Mm1MeanSojournMatchesTheory) {
  // lambda = 0.5, mu = 1.0 => rho = 0.5, E[T] = 1/(mu - lambda) = 2.
  Simulator sim;
  Resource r(sim, 1);
  arch21::Rng rng(77);
  double t = 0;
  const int jobs = 60000;
  for (int i = 0; i < jobs; ++i) {
    t += rng.exponential(2.0);        // interarrival, 1/lambda
    const double s = rng.exponential(1.0);
    sim.schedule_at(t, [&r, s] { r.request(s, nullptr); });
  }
  sim.run();
  EXPECT_EQ(r.completed(), static_cast<std::uint64_t>(jobs));
  EXPECT_NEAR(r.sojourn_stats().mean(), 2.0, 0.12);
  EXPECT_NEAR(r.wait_stats().mean(), 1.0, 0.12);
}

}  // namespace
}  // namespace arch21::des
