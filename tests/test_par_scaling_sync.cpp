// Tests for synchronization cost models and the 1000-way strong-scaling
// study (E7): speedup shape and the communication-energy crossover.

#include <gtest/gtest.h>

#include <cmath>

#include "energy/catalogue.hpp"
#include "par/scaling.hpp"
#include "par/sync.hpp"

namespace arch21::par {
namespace {

TEST(Barrier, LogarithmicLatency) {
  BarrierModel b;
  EXPECT_EQ(b.latency(1), 0.0);
  EXPECT_GT(b.latency(2), 0.0);
  // Doubling participants adds one level, not double latency.
  const double l64 = b.latency(64);
  const double l128 = b.latency(128);
  EXPECT_NEAR(l128 - l64, 2.0 * b.hop_latency_s, 1e-15);
  EXPECT_NEAR(l64, 2.0 * 6.0 * b.hop_latency_s, 1e-15);
}

TEST(Barrier, LinearEnergy) {
  BarrierModel b;
  EXPECT_EQ(b.energy(1), 0.0);
  EXPECT_NEAR(b.energy(101) / b.energy(51), 2.0, 1e-9);
}

TEST(Lock, SaturationAtRhoOne) {
  LockModel l;
  const double service = l.critical_section_s + l.transfer_s;
  const double sat_rate = 1.0 / service;
  EXPECT_LT(l.rho(1, sat_rate * 0.5), 1.0);
  EXPECT_GE(l.rho(2, sat_rate * 0.6), 1.0);
  EXPECT_TRUE(std::isinf(l.mean_sojourn(2, sat_rate)));
}

TEST(Lock, SojournGrowsWithContention) {
  LockModel l;
  const double rate = 1e5;  // per-core acquisition rate
  double prev = 0;
  for (std::uint32_t p = 1; p <= 16; p *= 2) {
    const double s = l.mean_sojourn(p, rate);
    if (std::isinf(s)) break;
    EXPECT_GT(s, prev);
    prev = s;
  }
  // Uncontended sojourn ~= service time.
  EXPECT_NEAR(l.mean_sojourn(1, 1.0),
              l.critical_section_s + l.transfer_s, 1e-9);
}

TEST(Atomic, ContentionCostsLineTransfer) {
  AtomicModel a;
  EXPECT_GT(a.energy_contended(), a.energy_uncontended());
  EXPECT_NEAR(a.energy_contended() - a.energy_uncontended(),
              a.line_transfer_j, 1e-18);
}

class ScalingTest : public ::testing::Test {
 protected:
  energy::Catalogue cat;
  ScalingWorkload w;
};

TEST_F(ScalingTest, RowsCoverSquareCounts) {
  const auto rows = strong_scaling(w, cat, 1024);
  ASSERT_EQ(rows.size(), 6u);  // 1,4,16,64,256,1024
  EXPECT_EQ(rows.front().cores, 1u);
  EXPECT_EQ(rows.back().cores, 1024u);
}

TEST_F(ScalingTest, SpeedupMonotoneButSublinear) {
  const auto rows = strong_scaling(w, cat, 1024);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].speedup, rows[i - 1].speedup);
  }
  // Parallel efficiency decays: speedup at 1024 clearly below 1024.
  EXPECT_LT(rows.back().speedup, 1024.0);
  EXPECT_GT(rows.back().speedup, 32.0);
}

TEST_F(ScalingTest, CommunicationEnergyFractionGrows) {
  // The paper's claim: communication energy outgrows computation energy
  // as parallelism scales.
  const auto rows = strong_scaling(w, cat, 1024);
  EXPECT_EQ(rows.front().comm_fraction, 0.0);  // single core: no comm
  for (std::size_t i = 2; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].comm_fraction, rows[i - 1].comm_fraction);
  }
  EXPECT_GT(rows.back().comm_fraction, 0.05);
}

TEST_F(ScalingTest, ComputeEnergyConstantAcrossScale) {
  // Same total ops at every scale: compute energy is flat; total
  // energy/op grows only through communication.
  const auto rows = strong_scaling(w, cat, 256);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_NEAR(rows[i].compute_energy_j, rows[0].compute_energy_j, 1e-9);
    EXPECT_GE(rows[i].energy_per_op_j, rows[i - 1].energy_per_op_j - 1e-18);
  }
}

TEST_F(ScalingTest, TimeDecomposesSanely) {
  const auto rows = strong_scaling(w, cat, 64);
  for (const auto& r : rows) {
    EXPECT_GT(r.time_s, 0.0);
    EXPECT_GE(r.compute_energy_j, 0.0);
    EXPECT_GE(r.comm_energy_j, 0.0);
    EXPECT_GE(r.sync_energy_j, 0.0);
  }
}

}  // namespace
}  // namespace arch21::par
