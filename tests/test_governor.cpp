// Tests for the hint instruction and the intent-driven energy governor:
// attribution of instructions to intents, and the hinted schedule beating
// both intent-blind static policies on energy-delay product.

#include <gtest/gtest.h>

#include "core/governor.hpp"
#include "isa/assembler.hpp"
#include "isa/machine.hpp"

namespace arch21::core {
namespace {

using isa::Intent;

isa::Machine run(const std::string& src) {
  auto r = isa::assemble(src);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  isa::Machine m(r.program);
  EXPECT_EQ(m.run(), isa::StopReason::Halted);
  return m;
}

TEST(Hint, AssemblesAndCounts) {
  const auto m = run("hint 1\nhint 2\nhint 0\nhalt\n");
  EXPECT_EQ(m.stats().hints, 3u);
}

TEST(Hint, BadFormsRejected) {
  EXPECT_FALSE(isa::assemble("hint\n").ok());
  EXPECT_FALSE(isa::assemble("hint r1\n").ok());
}

TEST(Hint, AttributesInstructionsToIntents) {
  const auto m = run(R"(
    li r1, 0            # default intent
    hint 1              # efficiency phase
    addi r1, r1, 1
    addi r1, r1, 1
    hint 2              # performance phase
    addi r1, r1, 1
    halt
)");
  const auto& by = m.stats().instrs_by_intent;
  // Default: li + hint1 (hint itself executes under the previous intent).
  EXPECT_EQ(by[static_cast<std::size_t>(Intent::Default)], 2u);
  // Efficiency: 2 addi + the hint 2 instruction.
  EXPECT_EQ(by[static_cast<std::size_t>(Intent::Efficiency)], 3u);
  // Performance: addi + halt.
  EXPECT_EQ(by[static_cast<std::size_t>(Intent::Performance)], 2u);
}

TEST(Hint, OutOfRangeIntentFallsBackToDefault) {
  const auto m = run("hint 99\naddi r1, r0, 1\nhalt\n");
  EXPECT_EQ(m.stats().instrs_by_intent[0], 3u);  // all default
}

class GovernorTest : public ::testing::Test {
 protected:
  tech::DvfsModel dvfs = tech::DvfsModel::for_node(*tech::find_node("22nm"));
};

TEST_F(GovernorTest, OperatingPointsOrdered) {
  const std::array<std::uint64_t, isa::kNumIntents> mix = {1000, 1000, 1000};
  const auto r = govern(mix, dvfs);
  const double v_def = r.chosen_v[0];
  const double v_eff = r.chosen_v[1];
  const double v_perf = r.chosen_v[2];
  EXPECT_LT(v_eff, v_def);
  EXPECT_LT(v_def, v_perf);
  EXPECT_DOUBLE_EQ(v_perf, dvfs.params().vnom);
}

TEST_F(GovernorTest, HintedBeatsNominalOnEnergy) {
  // A workload with a large efficiency phase saves big vs all-nominal.
  const std::array<std::uint64_t, isa::kNumIntents> mix = {1000, 100000, 2000};
  const auto r = govern(mix, dvfs);
  EXPECT_GT(r.energy_saving_vs_nominal(), 0.5);
  // The price is time; but far less than the static-efficient policy's
  // slowdown on the performance phase.
  EXPECT_GT(r.slowdown_vs_nominal(), 1.0);
  EXPECT_LT(r.hinted.time_s, r.static_efficient.time_s);
}

TEST_F(GovernorTest, HintedWinsUnderDeadlineConstraint) {
  // The decisive framing: Performance phases carry a deadline (nominal-
  // speed time).  static_efficient breaks it; static_nominal keeps it at
  // full energy; hinted keeps it at a fraction of the energy -- "major
  // efficiency gains" from conveying intent across the layer boundary.
  const std::array<std::uint64_t, isa::kNumIntents> mix = {20000, 60000,
                                                           20000};
  const auto r = govern(mix, dvfs);
  EXPECT_TRUE(r.hinted_admissible());
  EXPECT_FALSE(r.efficient_admissible());
  EXPECT_GT(r.perf_time_efficient, r.perf_time_nominal * 3);
  // Among admissible policies, hinted is the cheaper one.
  EXPECT_LT(r.hinted.energy_j, r.static_nominal.energy_j * 0.6);
}

TEST_F(GovernorTest, PureMixesDegenerate) {
  // All-performance: hinted == static nominal exactly.
  const std::array<std::uint64_t, isa::kNumIntents> perf = {0, 0, 50000};
  const auto rp = govern(perf, dvfs);
  EXPECT_DOUBLE_EQ(rp.hinted.energy_j, rp.static_nominal.energy_j);
  EXPECT_DOUBLE_EQ(rp.hinted.time_s, rp.static_nominal.time_s);
  // All-efficiency: hinted == static efficient exactly.
  const std::array<std::uint64_t, isa::kNumIntents> eff = {0, 50000, 0};
  const auto re = govern(eff, dvfs);
  EXPECT_DOUBLE_EQ(re.hinted.energy_j, re.static_efficient.energy_j);
}

TEST_F(GovernorTest, EndToEndFromMachineStats) {
  // Full loop: program conveys intent, machine attributes, governor acts.
  const auto m = run(R"(
    hint 1
    li r2, 1
    li r3, 2000
loop:
    addi r2, r2, 1
    blt r2, r3, loop
    hint 2
    addi r4, r0, 7
    out r4
    halt
)");
  const auto r = govern(m.stats().instrs_by_intent, dvfs);
  EXPECT_GT(r.energy_saving_vs_nominal(), 0.4);  // the loop ran efficient
  EXPECT_GT(r.hinted.time_s, 0.0);
}

}  // namespace
}  // namespace arch21::core
