// Tests for the log-scaled histogram: bounded relative error of quantile
// queries, merging, and boundary behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace arch21 {
namespace {

TEST(LogHistogram, EmptyQuantileIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, SingleValue) {
  LogHistogram h;
  h.add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.quantile(0.5), 42.0, 42.0 * 0.05);
  EXPECT_DOUBLE_EQ(h.max_seen(), 42.0);
  EXPECT_DOUBLE_EQ(h.min_seen(), 42.0);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(LogHistogram, WeightedAdd) {
  LogHistogram h;
  h.add(1.0, 99);
  h.add(100.0, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 1.0, 0.1);
  EXPECT_GT(h.quantile(0.995), 50.0);
}

TEST(LogHistogram, BadConstructionThrows) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 10), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 0.5, 10), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(LogHistogram, QuantileRelativeErrorBounded) {
  Rng rng(5);
  LogHistogram h(1e-3, 1e4, 90);
  std::vector<double> exact;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.lognormal(1.0, 1.0);
    h.add(v);
    exact.push_back(v);
  }
  Percentiles p(exact);
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double approx = h.quantile(q);
    const double truth = p.at(q);
    // Allowed relative error: bucket growth (~2.6% at 90/decade) plus a
    // little sampling noise at the extreme tail.
    EXPECT_NEAR(approx / truth, 1.0, 0.06) << "q=" << q;
  }
}

TEST(LogHistogram, MergePreservesCounts) {
  Rng rng(6);
  LogHistogram a(1e-3, 1e4, 90);
  LogHistogram b(1e-3, 1e4, 90);
  LogHistogram all(1e-3, 1e4, 90);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(3.0) + 1e-3;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q));
  }
  EXPECT_DOUBLE_EQ(a.max_seen(), all.max_seen());
}

TEST(LogHistogram, MergeIncompatibleThrows) {
  LogHistogram a(1e-3, 1e4, 90);
  LogHistogram b(1e-3, 1e4, 45);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, MergeMismatchedBoundsThrows) {
  LogHistogram a(1e-3, 1e4, 90);
  LogHistogram lower(1e-2, 1e4, 90);
  LogHistogram higher(1e-3, 1e5, 90);
  EXPECT_THROW(a.merge(lower), std::invalid_argument);
  EXPECT_THROW(a.merge(higher), std::invalid_argument);
  // The failed merges must not have touched the destination.
  EXPECT_EQ(a.count(), 0u);
}

TEST(LogHistogram, MergeCompatibleAccumulates) {
  LogHistogram a(1e-3, 1e4, 90);
  LogHistogram b(1e-3, 1e4, 90);
  a.add(1.0);
  a.add(10.0);
  b.add(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 100.0);
  EXPECT_NEAR(a.mean(), 111.0 / 3.0, 1e-9);
}

TEST(LogHistogram, UnderflowAndOverflowCaptured) {
  LogHistogram h(1.0, 100.0, 30);
  h.add(1e-9);   // underflow bucket
  h.add(1e9);    // overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-9);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e9);
}

TEST(LogHistogram, QuantileMonotone) {
  Rng rng(7);
  LogHistogram h;
  for (int i = 0; i < 5000; ++i) h.add(rng.pareto(1.0, 1.2));
  double prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

// Regression (PR4): NaN used to fall through add()'s range checks into
// bucket_of(), where log(NaN) cast to size_t is undefined behaviour (an
// out-of-bounds counts_ write on typical codegen), and NaN/inf poisoned
// min/max/mean.  Unrepresentable samples now land in a counted invalid
// bin and leave every statistic untouched.
TEST(LogHistogram, InvalidSamplesAreCountedNotBucketed) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  LogHistogram h(1.0, 100.0, 30);
  h.add(10.0);
  h.add(20.0);
  const double p50_before = h.quantile(0.5);

  h.add(kNaN);
  h.add(-kNaN);
  h.add(kInf);
  h.add(-kInf);
  h.add(-1.0);
  h.add(kNaN, 10);  // weighted invalid adds carry their count

  EXPECT_EQ(h.count(), 2u);  // recorded samples unchanged
  EXPECT_EQ(h.invalid(), 15u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), p50_before);
  EXPECT_DOUBLE_EQ(h.min_seen(), 10.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 20.0);
  EXPECT_DOUBLE_EQ(h.mean(), 15.0);
  // fraction_above(NaN) must not reach bucket_of either.
  EXPECT_DOUBLE_EQ(h.fraction_above(kNaN), 0.0);
}

TEST(LogHistogram, ZeroAndDenormalGoToUnderflowNotInvalid) {
  LogHistogram h(1.0, 100.0, 30);
  h.add(0.0);
  h.add(std::numeric_limits<double>::denorm_min());
  h.add(1e-300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.invalid(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);  // min_seen is the real minimum
}

TEST(LogHistogram, MergeCarriesInvalidCount) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  LogHistogram a(1.0, 100.0, 30);
  LogHistogram b(1.0, 100.0, 30);
  a.add(kNaN);
  b.add(kNaN, 2);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.invalid(), 3u);
}

// Regression (PR4): quantile()'s cumulative walk used to return the edge
// of whatever bucket it stopped in, so a histogram whose only mass sat in
// the underflow bucket returned min_seen for EVERY q (including q = 1),
// and overflow-only mass returned max_seen even at q = 0.  The edges are
// now pinned: quantile(0) == min_seen, quantile(1) == max_seen, exactly.
TEST(LogHistogram, QuantileEdgesPinnedForUnderflowOnlyMass) {
  LogHistogram h(1.0, 100.0, 30);
  h.add(0.001);
  h.add(0.5);  // both below lowest: all mass in the underflow bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.001);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.5);
  EXPECT_GT(h.quantile(1.0), h.quantile(0.0));
}

TEST(LogHistogram, QuantileEdgesPinnedForOverflowOnlyMass) {
  LogHistogram h(1.0, 100.0, 30);
  h.add(200.0);
  h.add(9000.0);  // both >= highest: all mass in the overflow bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 200.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 9000.0);
}

TEST(LogHistogram, QuantileEdgesOnSingleSample) {
  LogHistogram h(1.0, 100.0, 30);
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
  // Out-of-range q clamps to the pinned edges.
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 7.0);
}

TEST(LogHistogram, QuantileBetweenTwoBucketsInterpolates) {
  LogHistogram h(1.0, 1000.0, 30);
  h.add(2.0);
  h.add(500.0);
  // Interior quantiles stay inside [min_seen, max_seen] and bracket the
  // two samples; the edges return them exactly.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 500.0);
  const double mid = h.quantile(0.5);
  EXPECT_GE(mid, 2.0);
  EXPECT_LE(mid, 500.0);
  EXPECT_NEAR(h.quantile(0.25), 2.0, 2.0 * 0.1);
  EXPECT_NEAR(h.quantile(0.9), 500.0, 500.0 * 0.1);
}

// Property test for the vectorized bucket merge (PR8): fold shard
// histograms through merge() -- the fixed-stride loop obs::snapshot()
// leans on -- and replay the exact same samples through scalar add()
// calls; the two must agree under the bit-exact default operator==,
// i.e. every count bucket, the invalid bin, AND the FP accumulators
// (sum_, min/max).  Sample values come from an exactly-representable
// power-of-two grid so every partial sum is exact and therefore
// independent of fold order; NaN / -inf / negative samples ride along
// so the invalid-bin carry is part of the property.
TEST(LogHistogram, VectorizedMergeMatchesScalarFoldBitExact) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr int kShards = 8;
  std::vector<LogHistogram> shards(kShards, LogHistogram(1e-2, 1e5, 90));
  LogHistogram direct(1e-2, 1e5, 90);
  Rng rng(2014, 8);
  for (int s = 0; s < kShards; ++s) {
    for (int i = 0; i < 4000; ++i) {
      // 2^-8 .. 2^15: spans underflow, interior, and overflow buckets.
      double v = std::ldexp(1.0, static_cast<int>(rng.below(24)) - 8);
      const auto roll = rng.below(97);
      if (roll == 0) v = kNaN;
      if (roll == 1) v = -kInf;
      if (roll == 2) v = -v;
      shards[s].add(v);
      direct.add(v);
    }
  }
  LogHistogram merged(1e-2, 1e5, 90);
  for (const auto& s : shards) merged.merge(s);
  EXPECT_TRUE(merged == direct);
  EXPECT_GT(merged.invalid(), 0u);  // the invalid bin must be exercised
  EXPECT_EQ(merged.count() + merged.invalid(),
            std::uint64_t{kShards} * 4000u);
  // Merging mismatched layouts must throw, not silently misalign; the
  // bit-exact destination must be left untouched by the failed merge.
  LogHistogram misaligned(1e-3, 1e4, 90);
  misaligned.add(1.0);
  EXPECT_THROW(merged.merge(misaligned), std::invalid_argument);
  EXPECT_TRUE(merged == direct);
}

// merge() deliberately has no __restrict on the count pointers: a
// self-merge aliases src and dst, and must double every statistic
// rather than corrupt them (GCC versions the vector loop with an
// overlap check).
TEST(LogHistogram, SelfMergeDoublesEverything) {
  LogHistogram h(1e-2, 1e5, 90);
  h.add(0.5);
  h.add(64.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.merge(h);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.invalid(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 + 64.0) / 2.0);
  EXPECT_DOUBLE_EQ(h.min_seen(), 0.5);
  EXPECT_DOUBLE_EQ(h.max_seen(), 64.0);
}

TEST(LogHistogram, PercentileLineRenders) {
  LogHistogram h;
  h.add(1.0);
  h.add(2.0);
  const auto line = h.percentile_line();
  EXPECT_NE(line.find("p50="), std::string::npos);
  EXPECT_NE(line.find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace arch21
