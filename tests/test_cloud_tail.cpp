// Tests for the tail-latency machinery: the paper's 63% closed form, the
// fork-join simulator's agreement with it, and the Dean mitigations
// (hedged and tied requests).

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/tail.hpp"

namespace arch21::cloud {
namespace {

TEST(TailAmplification, PaperHeadlineNumber) {
  // "if 100 systems must jointly respond to a request, 63% of requests
  // will incur the 99-percentile delay of the individual systems"
  EXPECT_NEAR(tail_amplification(100, 0.99), 0.634, 0.001);
  EXPECT_NEAR(tail_amplification(1, 0.99), 0.01, 1e-12);
  EXPECT_NEAR(tail_amplification(2000, 0.9999), 1.0 - std::pow(0.9999, 2000),
              1e-12);
}

TEST(TailAmplification, MonotoneInFanout) {
  double prev = 0;
  for (unsigned n : {1u, 10u, 100u, 1000u}) {
    const double a = tail_amplification(n, 0.99);
    EXPECT_GT(a, prev);
    prev = a;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(LeafDistribution, ShapeSane) {
  auto leaf = make_leaf_distribution(5.0, 0.4, 0.01, 50.0, 1.5);
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(leaf(rng));
  const auto s = Summary::of(xs);
  EXPECT_NEAR(s.p50, 5.0, 0.4);       // median ~ parameter
  EXPECT_GT(s.p999, s.p99 * 1.5);     // heavy tail
  EXPECT_GT(s.max, 20.0);             // stragglers exist
}

TEST(ForkJoin, SimulationMatchesClosedForm) {
  auto leaf = make_leaf_distribution();
  const auto rows = fanout_sweep({1, 10, 100}, 20000, leaf, 99);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& r : rows) {
    EXPECT_NEAR(r.simulated_frac, r.analytic_frac, 0.04)
        << "fanout " << r.fanout;
  }
  // The 100-way row reproduces the paper's 63%.
  EXPECT_NEAR(rows[2].simulated_frac, 0.63, 0.04);
}

TEST(ForkJoin, P99AmplificationGrowsWithFanout) {
  // Use a smooth (straggler-free) lognormal so the p99 estimate is stable
  // at modest sample counts; the mixture's straggler cliff makes p99 an
  // extremely high-variance statistic.
  auto leaf = make_leaf_distribution(5.0, 0.4, 0.0);
  const auto rows = fanout_sweep({1, 10, 100, 1000}, 5000, leaf, 7);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].p99_amplification, rows[i - 1].p99_amplification);
  }
  EXPECT_NEAR(rows[0].p99_amplification, 1.0, 0.15);
}

TEST(ForkJoin, RequestLatencyIsMaxOfLeaves) {
  auto leaf = make_leaf_distribution();
  const auto res = simulate_fork_join(50, 5000, leaf);
  EXPECT_GE(res.request_latency_ms.p50, res.leaf_latency_ms.p50);
  EXPECT_GE(res.request_latency_ms.min, res.leaf_latency_ms.min);
  EXPECT_EQ(res.extra_load_fraction, 0.0);  // no mitigation
}

TEST(Hedging, CutsTailWithSmallExtraLoad) {
  auto leaf = make_leaf_distribution(5.0, 0.4, 0.02, 60.0, 1.4);
  HedgePolicy none;
  HedgePolicy hedged;
  hedged.kind = HedgePolicy::Kind::Hedged;
  hedged.hedge_delay_ms = 15.0;  // ~ leaf p95
  const auto base = simulate_fork_join(100, 10000, leaf, none, 5);
  const auto mit = simulate_fork_join(100, 10000, leaf, hedged, 5);
  // Tail shrinks substantially...
  EXPECT_LT(mit.request_latency_ms.p99, base.request_latency_ms.p99 * 0.7);
  // ...for a small duplicate-request budget (Dean reports ~5%).
  EXPECT_LT(mit.extra_load_fraction, 0.10);
  EXPECT_GT(mit.extra_load_fraction, 0.0);
}

TEST(TiedRequests, StrongestTailCutMostExtraLoad) {
  auto leaf = make_leaf_distribution(5.0, 0.4, 0.02, 60.0, 1.4);
  HedgePolicy tied;
  tied.kind = HedgePolicy::Kind::Tied;
  const auto base = simulate_fork_join(100, 8000, leaf, {}, 6);
  const auto mit = simulate_fork_join(100, 8000, leaf, tied, 6);
  EXPECT_LT(mit.request_latency_ms.p99, base.request_latency_ms.p99 * 0.6);
  // Tied duplicates everything.
  EXPECT_NEAR(mit.extra_load_fraction, 1.0, 1e-9);
}

TEST(Hedging, MedianBarelyMoves) {
  // Mitigations target the tail; the median should be almost unchanged.
  auto leaf = make_leaf_distribution();
  HedgePolicy hedged;
  hedged.kind = HedgePolicy::Kind::Hedged;
  hedged.hedge_delay_ms = 15.0;
  const auto base = simulate_fork_join(10, 10000, leaf, {}, 8);
  const auto mit = simulate_fork_join(10, 10000, leaf, hedged, 8);
  EXPECT_NEAR(mit.request_latency_ms.p50 / base.request_latency_ms.p50, 1.0,
              0.1);
}

TEST(ForkJoin, DeterministicForSeed) {
  auto leaf = make_leaf_distribution();
  const auto a = simulate_fork_join(10, 1000, leaf, {}, 33);
  const auto b = simulate_fork_join(10, 1000, leaf, {}, 33);
  EXPECT_DOUBLE_EQ(a.request_latency_ms.p99, b.request_latency_ms.p99);
}

}  // namespace
}  // namespace arch21::cloud
