// Determinism contract of the parallel execution layer: every engine
// that fans work out over the thread pool must produce BIT-IDENTICAL
// results for pool sizes 1, 2, and hardware_concurrency, and across two
// runs at the same seed.  Chunk decompositions depend only on the trip
// count and grain, per-chunk RNG streams are Rng(seed, chunk), and chunk
// results fold in ascending chunk order -- so thread count must never
// leak into a result.  See "Parallel execution & determinism" in
// DESIGN.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "cloud/tail.hpp"
#include "core/dse.hpp"
#include "core/profile.hpp"
#include "reliab/fault_injection.hpp"
#include "sensor/intermittent.hpp"
#include "util/thread_pool.hpp"

namespace arch21 {
namespace {

std::vector<std::size_t> pool_sizes() {
  std::vector<std::size_t> sizes = {1, 2};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 2) sizes.push_back(hw);
  return sizes;
}

void expect_same_summary(const Summary& a, const Summary& b,
                         const std::string& what) {
  EXPECT_EQ(a.n, b.n) << what;
  EXPECT_DOUBLE_EQ(a.mean, b.mean) << what;
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev) << what;
  EXPECT_DOUBLE_EQ(a.min, b.min) << what;
  EXPECT_DOUBLE_EQ(a.p50, b.p50) << what;
  EXPECT_DOUBLE_EQ(a.p90, b.p90) << what;
  EXPECT_DOUBLE_EQ(a.p99, b.p99) << what;
  EXPECT_DOUBLE_EQ(a.p999, b.p999) << what;
  EXPECT_DOUBLE_EQ(a.max, b.max) << what;
}

void expect_same_frontier(const core::DseResult& a, const core::DseResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.evaluated, b.evaluated) << what;
  EXPECT_EQ(a.feasible, b.feasible) << what;
  ASSERT_EQ(a.frontier.size(), b.frontier.size()) << what;
  const auto& pa = a.frontier.points();
  const auto& pb = b.frontier.points();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].design.to_string(), pb[i].design.to_string())
        << what << " point " << i;
    EXPECT_DOUBLE_EQ(pa[i].metrics.throughput_ops, pb[i].metrics.throughput_ops)
        << what << " point " << i;
    EXPECT_DOUBLE_EQ(pa[i].metrics.power_w, pb[i].metrics.power_w)
        << what << " point " << i;
    EXPECT_DOUBLE_EQ(pa[i].metrics.ops_per_watt, pb[i].metrics.ops_per_watt)
        << what << " point " << i;
  }
}

TEST(ParallelDeterminism, ForkJoinIdenticalAcrossPoolSizes) {
  auto leaf = cloud::make_leaf_distribution();
  ThreadPool one(1);
  const auto ref = cloud::simulate_fork_join(50, 4000, leaf, {}, 33, &one);
  for (std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const auto got = cloud::simulate_fork_join(50, 4000, leaf, {}, 33, &pool);
    const std::string what = "threads=" + std::to_string(threads);
    expect_same_summary(ref.request_latency_ms, got.request_latency_ms,
                        what + " request");
    expect_same_summary(ref.leaf_latency_ms, got.leaf_latency_ms,
                        what + " leaf");
    EXPECT_DOUBLE_EQ(ref.extra_load_fraction, got.extra_load_fraction) << what;
    EXPECT_DOUBLE_EQ(ref.frac_over_leaf_p99, got.frac_over_leaf_p99) << what;
  }
}

TEST(ParallelDeterminism, ForkJoinHedgedIdenticalAcrossPoolSizes) {
  auto leaf = cloud::make_leaf_distribution(5.0, 0.4, 0.02, 60.0, 1.4);
  cloud::HedgePolicy hedged;
  hedged.kind = cloud::HedgePolicy::Kind::Hedged;
  hedged.hedge_delay_ms = 15.0;
  ThreadPool one(1);
  ThreadPool many(4);
  const auto a = cloud::simulate_fork_join(100, 3000, leaf, hedged, 5, &one);
  const auto b = cloud::simulate_fork_join(100, 3000, leaf, hedged, 5, &many);
  expect_same_summary(a.request_latency_ms, b.request_latency_ms, "hedged");
  EXPECT_DOUBLE_EQ(a.extra_load_fraction, b.extra_load_fraction);
}

TEST(ParallelDeterminism, FanoutSweepIdenticalAcrossPoolSizes) {
  auto leaf = cloud::make_leaf_distribution();
  ThreadPool one(1);
  const auto ref = cloud::fanout_sweep({1, 10, 100}, 4000, leaf, 99, &one);
  for (std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const auto got = cloud::fanout_sweep({1, 10, 100}, 4000, leaf, 99, &pool);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].fanout, got[i].fanout);
      EXPECT_DOUBLE_EQ(ref[i].analytic_frac, got[i].analytic_frac);
      EXPECT_DOUBLE_EQ(ref[i].simulated_frac, got[i].simulated_frac)
          << "threads=" << threads << " row " << i;
      EXPECT_DOUBLE_EQ(ref[i].p99_amplification, got[i].p99_amplification)
          << "threads=" << threads << " row " << i;
    }
  }
}

TEST(ParallelDeterminism, GridSearchIdenticalAcrossPoolSizes) {
  core::DesignSpace space;  // default space: 19440 points, ~38 chunks
  const auto app = core::profile_mobile_vision();
  ThreadPool one(1);
  const auto ref =
      core::grid_search(space, app, core::PlatformClass::Portable, &one);
  for (std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const auto got =
        core::grid_search(space, app, core::PlatformClass::Portable, &pool);
    expect_same_frontier(ref, got, "grid threads=" + std::to_string(threads));
  }
}

TEST(ParallelDeterminism, RandomSearchIdenticalAcrossPoolSizes) {
  core::DesignSpace space;
  const auto app = core::profile_graph_analytics();
  ThreadPool one(1);
  const auto ref = core::random_search(space, app,
                                       core::PlatformClass::Departmental,
                                       5000, 17, &one);
  EXPECT_EQ(ref.evaluated, 5000u);
  for (std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const auto got = core::random_search(
        space, app, core::PlatformClass::Departmental, 5000, 17, &pool);
    expect_same_frontier(ref, got, "random threads=" + std::to_string(threads));
  }
}

TEST(ParallelDeterminism, CampaignIdenticalAcrossPoolSizes) {
  const reliab::CampaignConfig cfg{.words = 30000, .flip_prob_per_bit = 1e-3,
                                   .seed = 2};
  ThreadPool one(1);
  const auto ref = reliab::run_campaign(cfg, &one);
  for (std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const auto got = reliab::run_campaign(cfg, &pool);
    EXPECT_EQ(ref.clean, got.clean) << "threads=" << threads;
    EXPECT_EQ(ref.corrected, got.corrected) << "threads=" << threads;
    EXPECT_EQ(ref.detected, got.detected) << "threads=" << threads;
    EXPECT_EQ(ref.silent, got.silent) << "threads=" << threads;
    EXPECT_EQ(got.clean + got.corrected + got.detected + got.silent,
              got.words);
  }
}

TEST(ParallelDeterminism, CheckpointIntervalChoiceIdenticalAcrossPoolSizes) {
  sensor::IntermittentConfig cfg;
  cfg.work_units = 4000;
  cfg.harvester.power_w = 2e-3;
  cfg.harvester.p_active = 0.35;
  cfg.harvester.cap_j = 40e-6;
  cfg.on_threshold_j = 25e-6;
  const std::vector<std::uint64_t> candidates = {1, 10, 50, 200, 2000};
  ThreadPool one(1);
  const auto ref = sensor::best_checkpoint_interval(cfg, candidates, &one);
  for (std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const auto got = sensor::best_checkpoint_interval(cfg, candidates, &pool);
    EXPECT_EQ(ref.interval, got.interval) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(ref.elapsed_s, got.elapsed_s) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, RepeatedRunsAtSameSeedIdentical) {
  auto leaf = cloud::make_leaf_distribution();
  ThreadPool pool(4);
  const auto a = cloud::simulate_fork_join(20, 2000, leaf, {}, 7, &pool);
  const auto b = cloud::simulate_fork_join(20, 2000, leaf, {}, 7, &pool);
  expect_same_summary(a.request_latency_ms, b.request_latency_ms, "rerun");

  core::DesignSpace space;
  const auto app = core::profile_health_monitor();
  const auto g1 =
      core::grid_search(space, app, core::PlatformClass::Sensor, &pool);
  const auto g2 =
      core::grid_search(space, app, core::PlatformClass::Sensor, &pool);
  expect_same_frontier(g1, g2, "grid rerun");
}

TEST(ParallelDeterminism, DesignSpacePointDecodeOrderPinned) {
  // Pin the mixed-radix decode of DesignSpace::point so the parallel grid
  // split can never silently reorder the space: the FIRST listed
  // dimension (nodes) varies fastest, and each later dimension is a
  // coarser stride.  point() must stay a pure function of its index.
  const core::DesignSpace space;
  const auto n = space.cardinality();
  ASSERT_EQ(n, 3u * 5 * 8 * 3 * 3 * 3 * 3 * 2);

  const auto p0 = space.point(0);  // first entry of every dimension
  EXPECT_EQ(p0.node, "45nm");
  EXPECT_DOUBLE_EQ(p0.vdd_scale, 0.6);
  EXPECT_EQ(p0.cores, 1u);
  EXPECT_DOUBLE_EQ(p0.bce_per_core, 1.0);
  EXPECT_EQ(p0.accel, accel::EngineClass::ScalarCpu);
  EXPECT_DOUBLE_EQ(p0.accel_area_fraction, 0.0);
  EXPECT_DOUBLE_EQ(p0.llc_mib, 2.0);
  EXPECT_FALSE(p0.stacked_dram);

  const auto plast = space.point(n - 1);  // last entry of every dimension
  EXPECT_EQ(plast.node, "22nm");
  EXPECT_DOUBLE_EQ(plast.vdd_scale, 1.0);
  EXPECT_EQ(plast.cores, 128u);
  EXPECT_DOUBLE_EQ(plast.bce_per_core, 16.0);
  EXPECT_EQ(plast.accel, accel::EngineClass::Asic);
  EXPECT_DOUBLE_EQ(plast.accel_area_fraction, 0.5);
  EXPECT_DOUBLE_EQ(plast.llc_mib, 32.0);
  EXPECT_TRUE(plast.stacked_dram);

  // Mid-point: index = 1 + 3*(2 + 5*4) = 67 decodes digit-by-digit as
  // node[1], vdd[2], cores[4], then zeros.
  const auto mid = space.point(67);
  EXPECT_EQ(mid.node, "32nm");
  EXPECT_DOUBLE_EQ(mid.vdd_scale, 0.8);
  EXPECT_EQ(mid.cores, 16u);
  EXPECT_DOUBLE_EQ(mid.bce_per_core, 1.0);
  EXPECT_EQ(mid.accel, accel::EngineClass::ScalarCpu);
  EXPECT_DOUBLE_EQ(mid.accel_area_fraction, 0.0);
  EXPECT_DOUBLE_EQ(mid.llc_mib, 2.0);
  EXPECT_FALSE(mid.stacked_dram);

  // Index arithmetic: +1 moves one step in the fastest dimension.
  EXPECT_EQ(space.point(1).node, "32nm");
  EXPECT_EQ(space.point(2).node, "22nm");
  EXPECT_EQ(space.point(3).node, "45nm");
  EXPECT_DOUBLE_EQ(space.point(3).vdd_scale, 0.7);
}

}  // namespace
}  // namespace arch21
