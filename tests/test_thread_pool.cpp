// Tests for the thread pool: task execution, parallel_for coverage, and
// stable chunk indexing for RNG derivation.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "util/thread_pool.hpp"

namespace arch21 {
namespace {

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunkIndicesAreStable) {
  // Chunk decomposition must be a pure function of (n, pool size), so two
  // identical runs see identical (begin, end, chunk) triples.
  auto collect = [](std::size_t threads, std::size_t n) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::tuple<std::size_t, std::size_t, std::size_t>> out;
    pool.parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t c) {
      std::lock_guard lk(mu);
      out.insert({b, e, c});
    });
    return out;
  };
  EXPECT_EQ(collect(3, 1000), collect(3, 1000));
}

TEST(ThreadPool, ChunkCountBounded) {
  ThreadPool pool(2);
  std::mutex mu;
  std::size_t chunks = 0;
  pool.parallel_for(100, [&](std::size_t, std::size_t, std::size_t) {
    std::lock_guard lk(mu);
    ++chunks;
  });
  EXPECT_LE(chunks, pool.size() * 4);
  EXPECT_GE(chunks, 1u);
}

TEST(ThreadPool, SmallNFewerChunksThanItems) {
  ThreadPool pool(8);
  std::mutex mu;
  std::set<std::size_t> seen;
  pool.parallel_for(3, [&](std::size_t b, std::size_t e, std::size_t) {
    std::lock_guard lk(mu);
    for (std::size_t i = b; i < e; ++i) seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace arch21
