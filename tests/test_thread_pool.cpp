// Tests for the thread pool: task execution, parallel_for coverage, and
// stable chunk indexing for RNG derivation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace arch21 {
namespace {

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunkIndicesAreStable) {
  // Chunk decomposition must be a pure function of (n, pool size), so two
  // identical runs see identical (begin, end, chunk) triples.
  auto collect = [](std::size_t threads, std::size_t n) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::tuple<std::size_t, std::size_t, std::size_t>> out;
    pool.parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t c) {
      std::lock_guard lk(mu);
      out.insert({b, e, c});
    });
    return out;
  };
  EXPECT_EQ(collect(3, 1000), collect(3, 1000));
}

TEST(ThreadPool, ChunkCountBounded) {
  ThreadPool pool(2);
  std::mutex mu;
  std::size_t chunks = 0;
  pool.parallel_for(100, [&](std::size_t, std::size_t, std::size_t) {
    std::lock_guard lk(mu);
    ++chunks;
  });
  EXPECT_LE(chunks, pool.size() * 4);
  EXPECT_GE(chunks, 1u);
}

TEST(ThreadPool, SmallNFewerChunksThanItems) {
  ThreadPool pool(8);
  std::mutex mu;
  std::set<std::size_t> seen;
  pool.parallel_for(3, [&](std::size_t b, std::size_t e, std::size_t) {
    std::lock_guard lk(mu);
    for (std::size_t i = b; i < e; ++i) seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ThreadPool, ChunksAreNonEmptyAndBalanced) {
  // Contract: chunks = clamp(n/grain, 1, size()*4); lengths differ by at
  // most one and no chunk is empty, even when n is not divisible.
  ThreadPool pool(2);
  for (std::size_t n : {1u, 3u, 7u, 9u, 100u, 101u, 1000u}) {
    std::mutex mu;
    std::vector<std::size_t> lens;
    pool.parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t) {
      std::lock_guard lk(mu);
      lens.push_back(e - b);
    });
    const std::size_t expect_chunks =
        std::clamp<std::size_t>(n, 1, pool.size() * 4);
    EXPECT_EQ(lens.size(), expect_chunks) << "n=" << n;
    const auto [mn, mx] = std::minmax_element(lens.begin(), lens.end());
    EXPECT_GE(*mn, 1u) << "n=" << n;
    EXPECT_LE(*mx - *mn, 1u) << "n=" << n;
  }
}

TEST(ThreadPool, GrainCoarsensChunks) {
  ThreadPool pool(4);
  std::mutex mu;
  std::size_t chunks = 0;
  pool.parallel_for(
      1000, [&](std::size_t, std::size_t, std::size_t) {
        std::lock_guard lk(mu);
        ++chunks;
      },
      /*grain=*/250);
  EXPECT_EQ(chunks, 4u);  // clamp(1000/250, 1, 16)
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t b, std::size_t, std::size_t) {
                          if (b == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t b, std::size_t e, std::size_t) {
    ok.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, SubmitFromWorkerIsExecuted) {
  // Tasks submitted from inside a pool task land on some deque and are
  // drained (work stealing keeps them reachable from any worker).
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &ran] {
      pool.submit([&ran] { ran.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ReduceChunksIndependentOfPoolSize) {
  EXPECT_EQ(ThreadPool::reduce_chunks(0, 100), 0u);
  EXPECT_EQ(ThreadPool::reduce_chunks(1, 100), 1u);
  EXPECT_EQ(ThreadPool::reduce_chunks(100, 100), 1u);
  EXPECT_EQ(ThreadPool::reduce_chunks(101, 100), 2u);
  EXPECT_EQ(ThreadPool::reduce_chunks(1000, 100), 10u);
}

TEST(ThreadPool, ParallelReduceCombinesInChunkOrder) {
  // A non-commutative combine (string concatenation) exposes any
  // out-of-order fold: the result must list chunks 0,1,2,... regardless
  // of pool size.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.parallel_reduce<std::string>(
        1000, std::string{}, /*grain=*/64,
        [](std::size_t, std::size_t, std::size_t chunk) {
          return "#" + std::to_string(chunk);
        },
        [](std::string acc, std::string part) { return acc + part; });
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial.substr(0, 6), "#0#1#2");
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(5), serial);
  EXPECT_EQ(run(16), serial);
}

TEST(ThreadPool, ParallelReduceSumsEveryIndexOnce) {
  ThreadPool pool(4);
  const std::size_t n = 4321;
  const auto sum = pool.parallel_reduce<std::uint64_t>(
      n, std::uint64_t{0}, /*grain=*/100,
      [](std::size_t b, std::size_t e, std::size_t) {
        std::uint64_t s = 0;
        for (std::size_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ParallelReducePropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_reduce<int>(
                   100, 0, /*grain=*/10,
                   [](std::size_t b, std::size_t, std::size_t) -> int {
                     if (b >= 50) throw std::runtime_error("chunk failed");
                     return 1;
                   },
                   [](int a, int b) { return a + b; }),
               std::runtime_error);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvOverride) {
  // ARCH21_THREADS overrides hardware_concurrency for default pools.
  setenv("ARCH21_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ThreadPool pool;  // threads == 0 -> default_threads()
  EXPECT_EQ(pool.size(), 3u);
  setenv("ARCH21_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  unsetenv("ARCH21_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace arch21
