// Tests for dynamic information-flow tracking on SR1: taint sources,
// propagation rules, memory shadow state, policy sinks (control hijack,
// pointer injection, data leak), and overhead accounting.

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/machine.hpp"
#include "isa/programs.hpp"

namespace arch21::isa {
namespace {

DiftPolicy default_policy() {
  DiftPolicy p;
  p.enabled = true;
  return p;
}

Machine make(const std::string& src, DiftPolicy pol,
             std::vector<std::uint64_t> inputs = {}) {
  auto r = assemble(src);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  Machine m(r.program, 1 << 20, pol);
  for (auto v : inputs) m.push_input(v);
  return m;
}

TEST(Dift, InputIsTainted) {
  auto m = make("in r1\nhalt\n", default_policy(), {5});
  EXPECT_EQ(m.run(), StopReason::Halted);
  EXPECT_TRUE(m.reg_tainted(1));
}

TEST(Dift, ConstantsAreClean) {
  auto m = make("li r1, 7\nhalt\n", default_policy());
  m.run();
  EXPECT_FALSE(m.reg_tainted(1));
}

TEST(Dift, AluPropagatesTaint) {
  auto m = make("in r1\nli r2, 3\nadd r3, r1, r2\nxor r4, r2, r2\nhalt\n",
                default_policy(), {9});
  m.run();
  EXPECT_TRUE(m.reg_tainted(3));   // tainted + clean = tainted
  EXPECT_FALSE(m.reg_tainted(4));  // clean op clean
}

TEST(Dift, OverwriteClearsTaint) {
  auto m = make("in r1\nli r1, 0\nhalt\n", default_policy(), {9});
  m.run();
  EXPECT_FALSE(m.reg_tainted(1));
}

TEST(Dift, TaintFlowsThroughMemory) {
  auto m = make(R"(
    in  r1
    li  r2, 0x4000
    st  r1, r2, 0       # taint 8 bytes
    ld  r3, r2, 0       # reload: tainted
    ldb r4, r2, 3       # single tainted byte
    halt
)",
                default_policy(), {0xdead});
  m.run();
  EXPECT_TRUE(m.reg_tainted(3));
  EXPECT_TRUE(m.reg_tainted(4));
  EXPECT_TRUE(m.mem_tainted(0x4000));
  EXPECT_TRUE(m.mem_tainted(0x4007));
  EXPECT_FALSE(m.mem_tainted(0x4008));
}

TEST(Dift, CleanStoreScrubsMemoryTaint) {
  auto m = make(R"(
    in  r1
    li  r2, 0x4000
    st  r1, r2, 0
    li  r3, 0
    st  r3, r2, 0       # clean store over tainted bytes
    ld  r4, r2, 0
    halt
)",
                default_policy(), {1});
  m.run();
  EXPECT_FALSE(m.reg_tainted(4));
  EXPECT_FALSE(m.mem_tainted(0x4000));
}

TEST(Dift, TaintedJumpTrapsAndIsAttributed) {
  auto m = make(programs::vulnerable_dispatch(), default_policy(), {2});
  EXPECT_EQ(m.run(), StopReason::DiftTrap);
  ASSERT_EQ(m.violations().size(), 1u);
  EXPECT_EQ(m.violations()[0].op, Op::Jr);
  EXPECT_NE(m.violations()[0].reason.find("tainted"), std::string::npos);
}

TEST(Dift, SanitizedDispatchDoesNotTrap) {
  // The fixed dispatcher bounds-checks and reads the target from trusted
  // program data: no violation, correct handler runs.
  auto m = make(programs::sanitized_dispatch(), default_policy(), {1});
  EXPECT_EQ(m.run(), StopReason::Halted);
  EXPECT_TRUE(m.violations().empty());
  ASSERT_EQ(m.output().size(), 1u);
  EXPECT_EQ(m.output()[0], 200u);
}

TEST(Dift, WithoutDiftAttackSucceedsSilently) {
  // The same attack with DIFT off diverts control with no alarm --
  // jumping to instruction 2 (h0) runs the attacker-chosen handler.
  DiftPolicy off;
  off.enabled = false;
  auto m = make(programs::vulnerable_dispatch(), off, {2});
  EXPECT_EQ(m.run(), StopReason::Halted);
  ASSERT_EQ(m.output().size(), 1u);
  EXPECT_EQ(m.output()[0], 100u);  // attacker reached h0
  EXPECT_TRUE(m.violations().empty());
}

TEST(Dift, TaintedStoreAddressTraps) {
  auto m = make(R"(
    in  r1              # attacker-controlled pointer
    li  r2, 7
    st  r2, r1, 0       # write-anywhere primitive
    halt
)",
                default_policy(), {0x8000});
  EXPECT_EQ(m.run(), StopReason::DiftTrap);
  ASSERT_EQ(m.violations().size(), 1u);
  EXPECT_EQ(m.violations()[0].op, Op::St);
}

TEST(Dift, LeakPolicyTrapsTaintedOut) {
  DiftPolicy pol = default_policy();
  pol.trap_tainted_out = true;
  auto m = make("in r1\nout r1\nhalt\n", pol, {42});
  EXPECT_EQ(m.run(), StopReason::DiftTrap);
  EXPECT_EQ(m.violations()[0].op, Op::Out);
  // Default policy allows it.
  auto m2 = make("in r1\nout r1\nhalt\n", default_policy(), {42});
  EXPECT_EQ(m2.run(), StopReason::Halted);
}

TEST(Dift, PolicyTogglesDisableChecks) {
  DiftPolicy pol = default_policy();
  pol.trap_tainted_jump = false;
  auto m = make(programs::vulnerable_dispatch(), pol, {2});
  EXPECT_EQ(m.run(), StopReason::Halted);  // no trap, attack "works"
  pol = default_policy();
  pol.propagate_alu = false;
  auto m2 = make("in r1\naddi r2, r1, 0\nhalt\n", pol, {1});
  m2.run();
  EXPECT_FALSE(m2.reg_tainted(2));  // propagation cut
  EXPECT_TRUE(m2.reg_tainted(1));   // source still marked
}

TEST(Dift, LoadAddressPropagationOptIn) {
  const std::string src = R"(
    in  r1
    andi r2, r1, 0x38   # tainted index
    ld  r3, r2, 0x1000  # load from clean memory via tainted address
    halt
)";
  auto lax = make(src, default_policy(), {8});
  lax.run();
  EXPECT_FALSE(lax.reg_tainted(3));  // value-only tracking

  DiftPolicy strict = default_policy();
  strict.propagate_load_addr = true;
  auto m = make(src, strict, {8});
  m.run();
  EXPECT_TRUE(m.reg_tainted(3));  // address taint reaches the value
}

TEST(Dift, ShadowOpsCountedOnlyWhenEnabled) {
  auto on = make(programs::sum_loop(500), default_policy());
  on.run();
  EXPECT_GT(on.stats().shadow_ops, 0u);
  DiftPolicy off;
  off.enabled = false;
  auto moff = make(programs::sum_loop(500), off);
  moff.run();
  EXPECT_EQ(moff.stats().shadow_ops, 0u);
  // Same architectural result either way.
  EXPECT_EQ(on.output(), moff.output());
}

TEST(Dift, ShadowOverheadBounded) {
  // Tracking adds at most ~2 shadow operations per instruction on this
  // kernel -- the "low-overhead dynamic checking" the paper asks for.
  auto m = make(programs::sum_loop(2000), default_policy());
  m.run();
  const double per_instr = static_cast<double>(m.stats().shadow_ops) /
                           static_cast<double>(m.stats().instructions);
  EXPECT_GT(per_instr, 0.1);
  EXPECT_LT(per_instr, 2.0);
}

TEST(Dift, UntaintedJrIsFine) {
  auto m = make(R"(
    jal r15, fn
    out r0
    halt
fn:
    jr r15
)",
                default_policy());
  EXPECT_EQ(m.run(), StopReason::Halted);
  EXPECT_TRUE(m.violations().empty());
}

}  // namespace
}  // namespace arch21::isa
