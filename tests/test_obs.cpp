// Tests for the observability subsystem: the sharded metrics registry
// (lock-free hot path, deterministic merge), the bounded trace ring with
// Chrome trace_event JSON export, and -- most importantly -- the
// contract that attaching metrics or a trace to a simulation NEVER
// changes its results.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/resilience.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace arch21 {
namespace {

using obs::MetricKind;
using obs::MetricsRegistry;
using obs::TraceBuffer;

// ------------------------------------------------------- metrics registry

TEST(Metrics, DisabledRecordingIsANoOp) {
  MetricsRegistry reg;
  const auto c = reg.counter("ops");
  const auto g = reg.gauge("hwm");
  const auto t = reg.timer("lat");
  ASSERT_FALSE(reg.enabled());
  reg.add(c, 100);
  reg.gauge_max(g, 42.0);
  reg.record(t, 1.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].count, 0u);
  EXPECT_EQ(snap.entries[1].value, 0.0);
  EXPECT_EQ(snap.entries[2].count, 0u);
}

TEST(Metrics, CountersGaugesTimersAccumulate) {
  MetricsRegistry reg;
  const auto c = reg.counter("ops");
  const auto g = reg.gauge("hwm");
  const auto t = reg.timer("lat", 1e-3, 1e3, 30);
  reg.set_enabled(true);
  reg.add(c);
  reg.add(c, 9);
  reg.gauge_max(g, 5.0);
  reg.gauge_max(g, 3.0);  // below the high water: ignored
  for (int i = 1; i <= 100; ++i) reg.record(t, static_cast<double>(i));
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "ops");
  EXPECT_EQ(snap.entries[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snap.entries[0].count, 10u);
  EXPECT_EQ(snap.entries[1].kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(snap.entries[1].value, 5.0);
  EXPECT_EQ(snap.entries[2].kind, MetricKind::kTimer);
  EXPECT_EQ(snap.entries[2].count, 100u);
  EXPECT_NEAR(snap.entries[2].hist.mean(), 50.5, 1e-9);
  EXPECT_NEAR(snap.entries[2].hist.quantile(0.5), 50.0, 5.0);

  reg.reset();
  const auto zero = reg.snapshot();
  EXPECT_EQ(zero.entries[0].count, 0u);
  EXPECT_EQ(zero.entries[2].count, 0u);
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  MetricsRegistry reg;
  const auto a = reg.counter("x");
  const auto b = reg.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.metric_count(), 1u);
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.timer("x"), std::invalid_argument);
  const auto t = reg.timer("t", 1e-3, 1e3, 30);
  EXPECT_EQ(reg.timer("t", 1e-3, 1e3, 30), t);
  // Same name, different histogram layout: silently merging misaligned
  // buckets downstream would corrupt quantiles, so it must throw.
  EXPECT_THROW(reg.timer("t", 1e-3, 1e3, 60), std::invalid_argument);
  EXPECT_THROW(reg.timer("t", 1e-2, 1e3, 30), std::invalid_argument);
}

TEST(Metrics, ShardsSumExactlyAcrossThreads) {
  MetricsRegistry reg;
  const auto c = reg.counter("ops");
  const auto g = reg.gauge("chunk.max");
  const auto t = reg.timer("val", 1e-3, 1e4, 30);
  reg.set_enabled(true);
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  pool.parallel_for(
      kN,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          reg.add(c);
          reg.gauge_max(g, static_cast<double>(i));
          reg.record(t, static_cast<double>(i % 97) + 1.0);
        }
      },
      /*grain=*/64);
  // parallel_for blocked until every chunk finished, so the shards are
  // quiescent and snapshot() sees every write.
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.entries[0].count, kN);
  EXPECT_DOUBLE_EQ(snap.entries[1].value, static_cast<double>(kN - 1));
  EXPECT_EQ(snap.entries[2].count, kN);
}

TEST(Metrics, SnapshotJsonHasEveryMetric) {
  MetricsRegistry reg;
  reg.counter("a.count");
  reg.gauge("b.gauge");
  reg.timer("c.timer");
  reg.set_enabled(true);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"b.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"c.timer\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

// ------------------------------------------------------------ trace ring

TEST(Trace, BadConstructionThrows) {
  EXPECT_THROW(TraceBuffer(0), std::invalid_argument);
  EXPECT_THROW(TraceBuffer(16, 0.0), std::invalid_argument);
  EXPECT_THROW(TraceBuffer(16, -1.0), std::invalid_argument);
}

TEST(Trace, RingIsBoundedAndDropsOldest) {
  TraceBuffer tb(8);
  const auto n = tb.intern("tick");
  for (int i = 0; i < 20; ++i) {
    tb.instant(n, static_cast<double>(i), 0);
  }
  EXPECT_EQ(tb.size(), 8u);
  EXPECT_EQ(tb.capacity(), 8u);
  EXPECT_EQ(tb.dropped(), 12u);
  // The survivors are the NEWEST records: ts 12..19 present, 0..11 gone.
  const std::string json = tb.chrome_json();
  EXPECT_NE(json.find("\"ts\":19.000"), std::string::npos);
  EXPECT_EQ(json.find("\"ts\":11.000"), std::string::npos);
  tb.clear();
  EXPECT_EQ(tb.size(), 0u);
  EXPECT_EQ(tb.dropped(), 0u);
}

// Minimal structural JSON check: every brace/bracket outside a string
// balances and the scan ends at depth zero.  Not a full parser -- just
// enough to catch the classic export bugs (trailing commas are caught by
// the required-key checks plus Perfetto; unescaped quotes and unbalanced
// nesting are caught here).
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

// Split the export into one string per traceEvents element.  The writer
// emits exactly one event object per line, so line-splitting is a stable
// way to iterate events without a full JSON parser.
std::vector<std::string> event_lines(const std::string& json) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = json.find('\n', pos)) != std::string::npos) {
    ++pos;
    if (pos < json.size() && json[pos] == '{') {
      const std::size_t end = json.find('\n', pos);
      out.push_back(json.substr(pos, end - pos));
    }
  }
  return out;
}

double num_field(const std::string& line, const std::string& key) {
  const std::size_t at = line.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << key << " in " << line;
  return std::stod(line.substr(at + key.size() + 3));
}

std::string str_field(const std::string& line, const std::string& key) {
  const std::size_t at = line.find("\"" + key + "\":\"");
  EXPECT_NE(at, std::string::npos) << key << " in " << line;
  const std::size_t begin = at + key.size() + 4;
  return line.substr(begin, line.find('"', begin) - begin);
}

TEST(Trace, ChromeJsonIsWellFormed) {
  TraceBuffer tb(64, 1e3);
  tb.name_thread(0, "kernel");
  tb.name_thread(1, "leaf \"zero\"\n");  // hostile label must be escaped
  const auto serve = tb.intern("serve");
  const auto fire = tb.intern("fire");
  const auto q = tb.intern("query");
  const auto wait = tb.intern("wait");
  tb.complete(serve, 1.0, 2.5, 1, wait, 0.25);
  tb.instant(fire, 1.5, 0);
  tb.async_begin(q, 7, 0.5);
  tb.async_end(q, 7, 4.0, wait, 1.0);

  const std::string json = tb.chrome_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("leaf \\\"zero\\\"\\n"), std::string::npos);

  const auto lines = event_lines(json);
  // 1 process_name + 2 thread_name + 4 records.
  ASSERT_EQ(lines.size(), 7u);
  const std::string& x = lines[3];
  EXPECT_EQ(str_field(x, "ph"), "X");
  EXPECT_DOUBLE_EQ(num_field(x, "ts"), 1000.0);   // 1.0 ms -> us
  EXPECT_DOUBLE_EQ(num_field(x, "dur"), 2500.0);  // 2.5 ms -> us
  EXPECT_NE(x.find("\"args\":{\"wait\":0.25}"), std::string::npos);
  EXPECT_EQ(str_field(lines[4], "ph"), "i");
  EXPECT_NE(lines[4].find("\"s\":\"t\""), std::string::npos);
  EXPECT_EQ(str_field(lines[5], "ph"), "b");
  EXPECT_EQ(str_field(lines[5], "id"), "0x7");
  EXPECT_EQ(str_field(lines[5], "cat"), "async");
  EXPECT_EQ(str_field(lines[6], "ph"), "e");
}

// ------------------------------------------- simulation integration

#if ARCH21_OBS_ENABLED

cloud::ClusterConfig traced_cluster_config() {
  cloud::ClusterConfig cfg;
  cfg.leaves = 4;
  cfg.duration_s = 1.0;
  cfg.query_rate_hz = 60;
  cfg.background_rate_hz = 30;
  cfg.background_ms = 2.0;
  cfg.policy.hedge_after_ms = 12;
  cfg.policy.retry.timeout_ms = 30;
  cfg.policy.retry.max_retries = 1;
  cfg.seed = 99;
  return cfg;
}

TEST(TraceIntegration, ClusterSpansNestPerTrack) {
  auto cfg = traced_cluster_config();
  TraceBuffer trace(std::size_t{1} << 18, /*ts_to_us=*/1e3);
  cfg.trace = &trace;
  const auto r = cloud::simulate_cluster(cfg);
  ASSERT_GT(r.queries, 0u);
  ASSERT_EQ(trace.dropped(), 0u) << "enlarge the test ring";

  const std::string json = trace.chrome_json();
  EXPECT_TRUE(json_balanced(json));

  // Perfetto renders 'X' spans on one track correctly only if they do
  // not overlap; the per-server track assignment guarantees it, and this
  // replays the exported JSON to prove it.
  std::map<int, std::vector<std::pair<double, double>>> spans_by_tid;
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const auto& line : event_lines(json)) {
    const std::string ph = str_field(line, "ph");
    if (ph == "X") {
      spans_by_tid[static_cast<int>(num_field(line, "tid"))].push_back(
          {num_field(line, "ts"), num_field(line, "dur")});
    } else if (ph == "b") {
      ++begins;
    } else if (ph == "e") {
      ++ends;
    }
  }
  ASSERT_FALSE(spans_by_tid.empty());
  for (auto& [tid, spans] : spans_by_tid) {
    EXPECT_GE(tid, 1) << "serve spans live on leaf tracks, not track 0";
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      // 0.01 us slack: ts and dur are exported at %.3f us resolution, so
      // two back-to-back spans can disagree by a rounding ulp or two.
      EXPECT_GE(spans[i].first,
                spans[i - 1].first + spans[i - 1].second - 1e-2)
          << "overlapping serve spans on tid " << tid;
    }
  }
  // Fault-free run drained to completion: every query span that began
  // also ended (ring verified drop-free above).
  EXPECT_EQ(begins, r.queries);
  EXPECT_EQ(ends, begins);
  // Kernel instants landed on track 0.
  EXPECT_NE(json.find("\"des.fire\""), std::string::npos);
  EXPECT_NE(json.find("\"hedge\""), std::string::npos);
}

TEST(TraceIntegration, TracingDoesNotPerturbResults) {
  const auto cfg = traced_cluster_config();
  const auto plain = cloud::simulate_cluster(cfg);

  auto traced_cfg = cfg;
  TraceBuffer trace(std::size_t{1} << 18, 1e3);
  traced_cfg.trace = &trace;
  auto& m = MetricsRegistry::global();
  m.set_enabled(true);
  const auto traced = cloud::simulate_cluster(traced_cfg);
  m.set_enabled(false);

  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(plain.queries, traced.queries);
  EXPECT_EQ(plain.ok_queries, traced.ok_queries);
  EXPECT_EQ(plain.degraded_queries, traced.degraded_queries);
  EXPECT_EQ(plain.failed_queries, traced.failed_queries);
  EXPECT_EQ(plain.retries, traced.retries);
  EXPECT_EQ(plain.hedges, traced.hedges);
  EXPECT_EQ(plain.timeouts, traced.timeouts);
  EXPECT_EQ(plain.leaf_requests, traced.leaf_requests);
  EXPECT_EQ(plain.query_ms.count(), traced.query_ms.count());
  EXPECT_DOUBLE_EQ(plain.query_ms.quantile(0.5),
                   traced.query_ms.quantile(0.5));
  EXPECT_DOUBLE_EQ(plain.query_ms.quantile(0.99),
                   traced.query_ms.quantile(0.99));
  EXPECT_DOUBLE_EQ(plain.sum_result_quality, traced.sum_result_quality);
  EXPECT_DOUBLE_EQ(plain.mean_leaf_utilization,
                   traced.mean_leaf_utilization);
}

TEST(TraceIntegration, ClusterMetricsPublishedToGlobalRegistry) {
  auto& m = MetricsRegistry::global();
  m.set_enabled(true);
  m.reset();
  const auto cfg = traced_cluster_config();
  const auto r = cloud::simulate_cluster(cfg);
  const auto snap = m.snapshot();
  m.set_enabled(false);

  auto find = [&](const std::string& name) -> const obs::MetricsSnapshot::Entry* {
    for (const auto& e : snap.entries) {
      if (e.name == name) return &e;
    }
    return nullptr;
  };
  const auto* queries = find("cluster.queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->count, r.queries);
  const auto* hedges = find("cluster.hedges");
  ASSERT_NE(hedges, nullptr);
  EXPECT_EQ(hedges->count, r.hedges);
  const auto* executed = find("des.executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_GT(executed->count, r.queries);
  const auto* qms = find("cluster.query_ms");
  ASSERT_NE(qms, nullptr);
  EXPECT_EQ(qms->count, r.ok_queries + r.degraded_queries);
  // Same layout as ClusterResult::query_ms, so the quantiles agree.
  EXPECT_DOUBLE_EQ(qms->hist.quantile(0.99), r.query_ms.quantile(0.99));
  const auto* hwm = find("slab.queries.hwm");
  ASSERT_NE(hwm, nullptr);
  EXPECT_GE(hwm->value, 1.0);
}

TEST(TraceIntegration, MultiTrialRunsRejectATraceSink) {
  auto cfg = traced_cluster_config();
  TraceBuffer trace(1024, 1e3);
  cfg.trace = &trace;
  EXPECT_THROW(cloud::run_cluster_trials(cfg, 2), std::invalid_argument);
}

#endif  // ARCH21_OBS_ENABLED

TEST(PoolStats, CountsSubmissionsExecutionsAndSteals) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] { ++ran; });
  }
  pool.wait_idle();
  const auto s = pool.stats();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(s.submitted, 64u);
  EXPECT_EQ(s.executed, 64u);
  EXPECT_GE(s.max_queue_depth, 1u);
  EXPECT_LE(s.steals, s.executed);
}

}  // namespace
}  // namespace arch21
