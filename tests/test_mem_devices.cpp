// Tests for the device models: DRAM row-buffer behaviour, NVM endurance
// and wear, Start-Gap wear leveling, and the hybrid migration manager.

#include <gtest/gtest.h>

#include "mem/dram.hpp"
#include "mem/hybrid.hpp"
#include "mem/nvm.hpp"
#include "mem/wear_leveling.hpp"
#include "util/rng.hpp"

namespace arch21::mem {
namespace {

TEST(Dram, RowHitsAreFastAndCheap) {
  Dram d(DramConfig{});
  const auto miss = d.access(0, false);
  EXPECT_FALSE(miss.row_hit);
  const auto hit = d.access(8, false);
  EXPECT_TRUE(hit.row_hit);
  EXPECT_LT(hit.latency_ns, miss.latency_ns);
  EXPECT_LT(hit.energy_j, miss.energy_j);
  EXPECT_DOUBLE_EQ(d.row_hit_rate(), 0.5);
}

TEST(Dram, RowConflictPaysPrecharge) {
  DramConfig cfg;
  Dram d(cfg);
  d.access(0, false);                      // opens row 0 in bank 0
  const auto conflict =
      d.access(cfg.row_bytes * cfg.banks, false);  // row `banks` -> bank 0
  EXPECT_FALSE(conflict.row_hit);
  // Closed-bank first activate costs rcd+cas; conflict adds rp.
  EXPECT_NEAR(conflict.latency_ns, cfg.t_rp_ns + cfg.t_rcd_ns + cfg.t_cas_ns,
              1e-9);
}

TEST(Dram, BanksInterleaveIndependently) {
  DramConfig cfg;
  Dram d(cfg);
  d.access(0, false);                  // bank 0
  d.access(cfg.row_bytes, false);      // bank 1
  const auto back = d.access(8, false);  // bank 0, row still open
  EXPECT_TRUE(back.row_hit);
}

TEST(Dram, StreamingHasHighRowHitRate) {
  Dram d(DramConfig{});
  for (Addr a = 0; a < 1 << 20; a += 8) d.access(a, false);
  EXPECT_GT(d.row_hit_rate(), 0.99);
  Dram r(DramConfig{});
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) r.access(rng.below(1ull << 32), false);
  EXPECT_LT(r.row_hit_rate(), 0.05);
}

TEST(Nvm, AsymmetricCosts) {
  NvmDevice n(NvmConfig{});
  const auto rd = n.read(0);
  const auto wr = n.write(0);
  EXPECT_GT(wr.latency_ns, rd.latency_ns);
  EXPECT_GT(wr.energy_j, rd.energy_j);
}

TEST(Nvm, EnduranceExhaustionFlagsFailure) {
  NvmConfig cfg;
  cfg.lines = 16;
  cfg.mean_endurance = 100;  // tiny for the test
  cfg.endurance_shape = 20;  // low variance
  NvmDevice n(cfg);
  bool failed = false;
  for (int i = 0; i < 200 && !failed; ++i) {
    failed = n.write(3).line_failed;
  }
  EXPECT_TRUE(failed);
  EXPECT_EQ(n.failed_lines(), 1u);
  EXPECT_GT(n.writes_to(3), 50u);
}

TEST(Nvm, EnduranceVariesAcrossLines) {
  NvmConfig cfg;
  cfg.lines = 4096;
  NvmDevice n(cfg);
  std::uint64_t mn = UINT64_MAX;
  std::uint64_t mx = 0;
  for (std::uint64_t l = 0; l < cfg.lines; ++l) {
    mn = std::min(mn, n.endurance_of(l));
    mx = std::max(mx, n.endurance_of(l));
  }
  EXPECT_LT(mn, mx);
  // Both within an order of magnitude of the configured mean.
  EXPECT_GT(mn, cfg.mean_endurance / 100);
  EXPECT_LT(mx, cfg.mean_endurance * 10);
}

TEST(Nvm, OutOfRangeThrows) {
  NvmConfig cfg;
  cfg.lines = 8;
  NvmDevice n(cfg);
  EXPECT_THROW(n.read(8), std::out_of_range);
  EXPECT_THROW(n.write(100), std::out_of_range);
}

TEST(StartGap, MappingIsAPermutation) {
  NvmConfig cfg;
  cfg.lines = 257;
  NvmDevice dev(cfg);
  StartGap sg(dev, 4);
  // Hammer one line to force many gap moves.
  for (int i = 0; i < 5000; ++i) sg.write(0);
  EXPECT_GT(sg.gap_moves(), 1000u);
  std::vector<bool> seen(cfg.lines, false);
  for (std::uint64_t l = 0; l < sg.logical_lines(); ++l) {
    const auto p = sg.map(l);
    ASSERT_LT(p, cfg.lines);
    ASSERT_FALSE(seen[p]) << "duplicate physical slot " << p;
    seen[p] = true;
  }
}

TEST(StartGap, SpreadsHotLineWear) {
  // A 100% hot-line workload on the raw device puts all wear on one
  // line; through Start-Gap the same workload spreads across the device.
  NvmConfig cfg;
  cfg.lines = 129;
  cfg.mean_endurance = 1e12;  // never fail during the test
  const std::uint64_t writes = 100000;

  NvmDevice raw(cfg);
  for (std::uint64_t i = 0; i < writes; ++i) raw.write(5);
  EXPECT_EQ(raw.max_wear(), writes);

  NvmDevice leveled(cfg);
  StartGap sg(leveled, 16);
  for (std::uint64_t i = 0; i < writes; ++i) sg.write(5);
  // Max wear should drop by orders of magnitude (the hot line visits
  // every slot as the gap rotates).
  EXPECT_LT(leveled.max_wear(), writes / 10);
  EXPECT_LT(leveled.wear_cv(), raw.wear_cv());
}

TEST(StartGap, GapMoveOverheadBounded) {
  NvmConfig cfg;
  cfg.lines = 65;
  cfg.mean_endurance = 1e12;
  NvmDevice dev(cfg);
  StartGap sg(dev, 100);
  for (int i = 0; i < 10000; ++i) sg.write(static_cast<std::uint64_t>(i) % 64);
  // One gap move per 100 writes; each move costs <= 1 extra write.
  EXPECT_NEAR(static_cast<double>(sg.gap_moves()), 100.0, 2.0);
  EXPECT_LE(dev.total_writes(), 10000u + sg.gap_moves());
}

TEST(StartGap, ParameterValidation) {
  NvmConfig cfg;
  cfg.lines = 1;
  NvmDevice tiny(cfg);
  EXPECT_THROW(StartGap(tiny, 10), std::invalid_argument);
  cfg.lines = 8;
  NvmDevice ok(cfg);
  EXPECT_THROW(StartGap(ok, 0), std::invalid_argument);
  StartGap sg(ok, 5);
  EXPECT_THROW(sg.map(7), std::out_of_range);  // 7 logical lines: 0..6
}

TEST(Hybrid, HotPagePromotedToDram) {
  Dram dram(DramConfig{});
  NvmConfig ncfg;
  ncfg.lines = 1 << 14;
  NvmDevice nvm(ncfg);
  HybridMemory hm(dram, nvm, {.page_bytes = 4096, .dram_pages = 8,
                              .promote_threshold = 4, .epoch_accesses = 1 << 20});
  const Addr hot = 0x10000;
  EXPECT_FALSE(hm.in_dram(hot));
  for (int i = 0; i < 10; ++i) hm.access(hot + (i % 8) * 8, false);
  EXPECT_TRUE(hm.in_dram(hot));
  EXPECT_GE(hm.stats().promotions, 1u);
}

TEST(Hybrid, ColdPagesStayInNvm) {
  Dram dram(DramConfig{});
  NvmConfig ncfg;
  ncfg.lines = 1 << 14;
  NvmDevice nvm(ncfg);
  HybridMemory hm(dram, nvm, {.page_bytes = 4096, .dram_pages = 8,
                              .promote_threshold = 4, .epoch_accesses = 1 << 20});
  // Touch 100 pages once each: nothing qualifies for promotion.
  for (int p = 0; p < 100; ++p) hm.access(static_cast<Addr>(p) * 4096, false);
  EXPECT_EQ(hm.stats().promotions, 0u);
  EXPECT_EQ(hm.stats().nvm_hits, 100u);
}

TEST(Hybrid, DemotionMakesRoom) {
  Dram dram(DramConfig{});
  NvmConfig ncfg;
  ncfg.lines = 1 << 14;
  NvmDevice nvm(ncfg);
  HybridMemory hm(dram, nvm, {.page_bytes = 4096, .dram_pages = 4,
                              .promote_threshold = 2, .epoch_accesses = 256});
  // Promote 10 distinct pages; capacity 4 forces demotions.
  for (int p = 0; p < 10; ++p) {
    for (int i = 0; i < 5; ++i) {
      hm.access(static_cast<Addr>(p) * 4096 + static_cast<Addr>(i) * 64, false);
    }
  }
  EXPECT_LE(hm.dram_resident(), 4u);
  EXPECT_GT(hm.stats().demotions, 0u);
}

TEST(Hybrid, SkewedWorkloadMostlyServedFromDram) {
  Dram dram(DramConfig{});
  NvmConfig ncfg;
  ncfg.lines = 1 << 16;
  NvmDevice nvm(ncfg);
  HybridMemory hm(dram, nvm, {.page_bytes = 4096, .dram_pages = 32,
                              .promote_threshold = 4, .epoch_accesses = 8192});
  Rng rng(6);
  for (int i = 0; i < 100000; ++i) {
    // 90% of traffic to 16 hot pages, 10% to a large cold range.
    const Addr page = rng.chance(0.9) ? rng.below(16)
                                      : 16 + rng.below(4096);
    hm.access(page * 4096 + rng.below(512) * 8, rng.chance(0.3));
  }
  EXPECT_GT(hm.stats().dram_fraction(), 0.8);
  // Mean latency far below raw NVM read latency.
  EXPECT_LT(hm.stats().mean_latency_ns(), NvmConfig{}.read_ns);
}

}  // namespace
}  // namespace arch21::mem
