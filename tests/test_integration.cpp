// Cross-module integration tests: scenarios that thread several
// subsystems together the way the examples and benches do, pinning the
// seams between modules.

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/power.hpp"
#include "cloud/tail.hpp"
#include "core/dse.hpp"
#include "core/governor.hpp"
#include "core/report.hpp"
#include "cpu/pipeline.hpp"
#include "energy/budget.hpp"
#include "energy/ladder.hpp"
#include "energy/catalogue.hpp"
#include "isa/assembler.hpp"
#include "isa/machine.hpp"
#include "isa/programs.hpp"
#include "mem/hierarchy.hpp"
#include "mem/prefetch.hpp"
#include "par/laws.hpp"
#include "par/schedule.hpp"
#include "par/taskgraph.hpp"
#include "sensor/tradeoff.hpp"
#include "tech/dvfs.hpp"

namespace arch21 {
namespace {

TEST(Integration, Sr1TraceDrivesHierarchyThroughPrefetcher) {
  // Machine -> trace sink -> prefetcher -> hierarchy: the full memory
  // path.  A strided SR1 loop should enjoy prefetched L1 hits.
  auto asmres = isa::assemble(isa::programs::stride_walk(0x2000, 64, 8000));
  ASSERT_TRUE(asmres.ok());
  isa::Machine m(asmres.program);
  const energy::Catalogue cat;
  mem::Hierarchy h({.size_bytes = 4096, .line_bytes = 64, .ways = 4},
                   {.size_bytes = 32768, .line_bytes = 64, .ways = 8},
                   {.size_bytes = 262144, .line_bytes = 64, .ways = 8}, cat);
  mem::StridePrefetcher pf(h);
  m.set_trace_sink([&](isa::TraceRecord t) { pf.access(t.addr, t.write); });
  EXPECT_EQ(m.run(), isa::StopReason::Halted);
  EXPECT_EQ(pf.stats().demand_accesses, 8000u);
  EXPECT_GT(pf.stats().accuracy(), 0.9);
  EXPECT_GT(pf.stats().demand_hits_l1, 6000u);
}

TEST(Integration, DiftAndGovernorComposeOnOneProgram) {
  // Security and energy interfaces are orthogonal: a hinted program under
  // DIFT still attributes intents and still traps on the attack.
  const std::string prog = R"(
    hint 1
    in   r1
    li   r2, 0
    li   r3, 500
loop:
    addi r2, r2, 1
    blt  r2, r3, loop
    hint 2
    jr   r1            # attacker-controlled: must trap
)";
  auto asmres = isa::assemble(prog);
  ASSERT_TRUE(asmres.ok());
  isa::DiftPolicy pol;
  pol.enabled = true;
  isa::Machine m(asmres.program, 1 << 20, pol);
  m.push_input(3);
  EXPECT_EQ(m.run(), isa::StopReason::DiftTrap);
  // The loop ran under the Efficiency intent before the trap.
  const auto& by = m.stats().instrs_by_intent;
  EXPECT_GT(by[1], 900u);
  const auto dvfs = tech::DvfsModel::for_node(*tech::find_node("22nm"));
  const auto rep = core::govern(by, dvfs);
  EXPECT_GT(rep.energy_saving_vs_nominal(), 0.3);
}

TEST(Integration, DseWinnerSurvivesBudgetDecomposition) {
  // The DSE best design's power breakdown re-assembles into a PowerBudget
  // that fits the platform cap.
  core::DesignSpace space;
  space.nodes = {"22nm"};
  space.core_counts = {4, 16};
  space.bces = {1, 4};
  space.llc_mibs = {8};
  const auto res = core::grid_search(space, core::profile_mobile_vision(),
                                     core::PlatformClass::Portable);
  const auto* best = res.frontier.best_throughput();
  ASSERT_NE(best, nullptr);
  energy::PowerBudget budget("soc", core::power_cap_w(core::PlatformClass::Portable));
  budget.add("compute", best->metrics.p_compute_w);
  budget.add("memory", best->metrics.p_memory_w);
  budget.add("noc", best->metrics.p_comm_w);
  budget.add("leakage", best->metrics.p_leak_w);
  EXPECT_TRUE(budget.fits());
  EXPECT_NEAR(budget.total(), best->metrics.power_w,
              best->metrics.power_w * 0.02);
  // And the report renders it.
  const auto md = core::render_report(res, core::profile_mobile_vision(),
                                      core::PlatformClass::Portable);
  EXPECT_NE(md.find(best->design.to_string()), std::string::npos);
}

TEST(Integration, SchedulerEnergyMatchesCataloguePricing) {
  // Task-DAG comm energy priced via CommModel agrees with hand-computed
  // catalogue pricing for a known placement.
  par::TaskGraph g;
  const auto a = g.add(1e6, 1e4);
  const auto b = g.add(1e6, 1e4);
  const auto c = g.add(1e6);
  g.add_edge(a, c);
  g.add_edge(b, c);
  const double j_per_byte = 2e-9;
  const auto comm = par::CommModel::uniform(1e-12, j_per_byte);
  const auto cores = par::CoreModel::homogeneous(2, 1e9, 1e-12);
  const auto r = par::list_schedule(g, cores, comm);
  // a and b run on different cores; exactly one feeds c cross-core.
  EXPECT_NEAR(r.comm_energy_j, 1e4 * j_per_byte, 1e-12);
  EXPECT_NEAR(r.compute_energy_j, 3e6 * 1e-12, 1e-18);
}

TEST(Integration, TailClaimConsistentAcrossAnalyticAndSimulated) {
  // Closed form, sampler, and the Summary pipeline agree on the headline.
  const double analytic = cloud::tail_amplification(100, 0.99);
  auto leaf = cloud::make_leaf_distribution();
  const auto sim = cloud::simulate_fork_join(100, 10000, leaf, {}, 21);
  EXPECT_NEAR(sim.frac_over_leaf_p99, analytic, 0.05);
  EXPECT_GE(sim.request_latency_ms.max, sim.leaf_latency_ms.max);
}

TEST(Integration, SensorStrategyScalesWithNode) {
  // The sensor tradeoff shifts with technology: cheaper compute (newer
  // node) lowers the filtering break-even.
  sensor::StreamProfile s;
  const energy::Catalogue old_node(*tech::find_node("90nm"));
  const energy::Catalogue new_node(*tech::find_node("22nm"));
  const double be_old = sensor::filter_breakeven_reduction(s, old_node);
  const double be_new = sensor::filter_breakeven_reduction(s, new_node);
  EXPECT_LT(be_new, be_old);  // radio energy is fixed; compute got cheaper
}

TEST(Integration, ExaopFacilityVsLadderRung) {
  // The facility model and the ladder tell the same story from two sides.
  const auto sizing =
      cloud::Facility::size_for(cloud::ServerPower{}, 1.5, 1e18, 0.8);
  const auto rung = energy::ladder()[3];  // datacenter
  EXPECT_GT(sizing.power_w, rung.power_cap_w * 10);  // 2012 servers: >10x over
}

TEST(Integration, ProfiledCpiFeedsPerfModelSanely) {
  // cpu pipeline CPI and par laws compose: a core with measured IPC used
  // as the base-core rate in an Amdahl estimate.
  cpu::Gshare gs;
  const auto r =
      cpu::run_profiled(isa::programs::sum_loop(10000), {}, gs);
  const double ipc = r.cpi.ipc();
  ASSERT_GT(ipc, 1.0);
  const double speedup = par::amdahl_speedup(0.95, 16);
  const double throughput_16 = ipc * 1e9 * speedup;  // at 1 GHz
  EXPECT_GT(throughput_16, ipc * 1e9 * 8);  // f=0.95, 16 cores > 8x
}

}  // namespace
}  // namespace arch21
