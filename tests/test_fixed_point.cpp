// Tests for Q-format fixed-point arithmetic: round trips, arithmetic,
// saturation semantics, and the quantize() helper.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace arch21 {
namespace {

TEST(Fixed, RoundTripWithinResolution) {
  using F = Fixed<16>;
  for (double v : {0.0, 1.0, -1.0, 3.14159, -2.71828, 1000.5, -0.00001}) {
    const F f = F::from_double(v);
    EXPECT_NEAR(f.to_double(), v, F::resolution());
  }
}

TEST(Fixed, ResolutionIsPowerOfTwo) {
  EXPECT_DOUBLE_EQ(Fixed<8>::resolution(), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(Fixed<0>::resolution(), 1.0);
  EXPECT_DOUBLE_EQ(Fixed<20>::resolution(), std::ldexp(1.0, -20));
}

TEST(Fixed, AdditionAndSubtraction) {
  using F = Fixed<16>;
  const F a = F::from_double(1.5);
  const F b = F::from_double(2.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).to_double(), -0.75);
}

TEST(Fixed, MultiplicationExactOnDyadics) {
  using F = Fixed<16>;
  const F a = F::from_double(1.5);
  const F b = F::from_double(-2.5);
  EXPECT_DOUBLE_EQ((a * b).to_double(), -3.75);
}

TEST(Fixed, DivisionApproximate) {
  using F = Fixed<24>;
  const F a = F::from_double(1.0);
  const F b = F::from_double(3.0);
  EXPECT_NEAR((a / b).to_double(), 1.0 / 3.0, 2 * F::resolution());
}

TEST(Fixed, DivisionByZeroSaturates) {
  using F = Fixed<16>;
  const F a = F::from_double(5.0);
  const F z = F::from_double(0.0);
  EXPECT_EQ((a / z).raw(), std::numeric_limits<std::int64_t>::max());
  const F n = F::from_double(-5.0);
  EXPECT_EQ((n / z).raw(), std::numeric_limits<std::int64_t>::min());
}

TEST(Fixed, AdditionSaturatesOnOverflow) {
  using F = Fixed<8>;
  const F big = F::from_raw(std::numeric_limits<std::int64_t>::max() - 1);
  const F one = F::from_double(1.0);
  EXPECT_EQ((big + one).raw(), std::numeric_limits<std::int64_t>::max());
  const F small = F::from_raw(std::numeric_limits<std::int64_t>::min() + 1);
  EXPECT_EQ((small - one).raw(), std::numeric_limits<std::int64_t>::min());
}

TEST(Fixed, FromDoubleSaturates) {
  using F = Fixed<32>;
  EXPECT_EQ(F::from_double(1e30).raw(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(F::from_double(-1e30).raw(), std::numeric_limits<std::int64_t>::min());
}

TEST(Fixed, Comparisons) {
  using F = Fixed<16>;
  EXPECT_TRUE(F::from_double(1.0) < F::from_double(2.0));
  EXPECT_TRUE(F::from_double(2.0) == F::from_double(2.0));
  EXPECT_TRUE(F::from_double(-1.0) > F::from_double(-2.0));
}

TEST(Quantize, MatchesFixedRoundTrip) {
  for (int bits : {4, 8, 12, 16}) {
    for (double v : {0.123456, -7.654321, 3.0, 0.0}) {
      const double q = quantize(v, bits);
      EXPECT_NEAR(q, v, std::ldexp(1.0, -bits));
      // Quantizing twice is idempotent.
      EXPECT_DOUBLE_EQ(quantize(q, bits), q);
    }
  }
}

// Property: (a+b) and (a*b) in fixed point track doubles within a bound
// derived from the resolution.
class FixedArithmeticProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedArithmeticProperty, TracksDoubleArithmetic) {
  using F = Fixed<20>;
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(-100.0, 100.0);
    const double b = rng.uniform(-100.0, 100.0);
    const F fa = F::from_double(a);
    const F fb = F::from_double(b);
    EXPECT_NEAR((fa + fb).to_double(), a + b, 2 * F::resolution());
    EXPECT_NEAR((fa * fb).to_double(), a * b,
                (std::abs(a) + std::abs(b) + 1) * F::resolution());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedArithmeticProperty,
                         ::testing::Values(1, 22, 333));

}  // namespace
}  // namespace arch21
