// Determinism contract of the conservative PDES layer, pinned
// differentially against the serial kernel at every level:
//   * Simulator::schedule_n (the window-commit primitive) against
//     one-at-a-time scheduling and the reference heap;
//   * a generic multi-LP mesh on ParallelEngine at workers 1/2/4/8
//     against LoopbackEngine (one unchanged serial Simulator);
//   * the LP-sharded cluster scenario: whole ClusterResults bit-identical
//     (histograms included) across worker counts, with and without the
//     full policy/fault stack;
//   * lookahead/partition/config validation and cross-LP cancellation
//     across a window boundary.
// The same binary runs under TSan in scripts/tier1.sh, so the barrier
// discipline (not just the results) is checked.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/resilience.hpp"
#include "des/partition.hpp"
#include "des/pdes.hpp"
#include "des/pdes_workload.hpp"
#include "des/reference_heap.hpp"
#include "des/simulator.hpp"
#include "des/workload.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace arch21;
using namespace arch21::des;

constexpr std::uint64_t kSeeds[] = {2014, 0xC0FFEE, 777};
constexpr unsigned kWorkerCounts[] = {1, 2, 4, 8};

// ------------------------------------------------------------ schedule_n

TEST(ScheduleN, MatchesLoopAndReferenceHeap) {
  for (const std::uint64_t seed : kSeeds) {
    const WorkloadResult one = replay_schedule_heavy<Simulator>(seed, 4000);
    const WorkloadResult ref =
        replay_schedule_heavy<ReferenceSimulator>(seed, 4000);
    ASSERT_EQ(one, ref);
    for (const std::uint32_t batch : {1u, 7u, 64u, 4096u}) {
      const WorkloadResult batched =
          replay_schedule_heavy_batched<Simulator>(seed, 4000, batch);
      EXPECT_EQ(batched, one) << "seed=" << seed << " batch=" << batch;
      const WorkloadResult batched_ref =
          replay_schedule_heavy_batched<ReferenceSimulator>(seed, 4000, batch);
      EXPECT_EQ(batched_ref, one) << "seed=" << seed << " batch=" << batch;
    }
  }
}

TEST(ScheduleN, RejectsPastTimesBeforeSchedulingAnything) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  ASSERT_EQ(sim.now(), 10.0);
  int fired = 0;
  Simulator::TimedAction evs[] = {
      {20.0, [&] { ++fired; }},
      {5.0, [&] { ++fired; }},  // in the past -> whole batch rejected
  };
  EXPECT_THROW(sim.schedule_n(evs, 2), std::invalid_argument);
  sim.run();
  EXPECT_EQ(fired, 0) << "a rejected batch must schedule none of its events";
}

// ------------------------------------------------------- engine contract

TEST(PartitionSpec, RejectsZeroLookaheadAndZeroLps) {
  PartitionSpec ok;
  ok.lps = 2;
  ok.lookahead = 0.5;
  EXPECT_NO_THROW(ok.validate());

  PartitionSpec zero_la = ok;
  zero_la.lookahead = 0;  // conservative window would collapse
  EXPECT_THROW(zero_la.validate(), std::invalid_argument);

  PartitionSpec single = ok;
  single.lps = 1;
  single.lookahead = 0;  // rejected even for one LP: keep the contract flat
  EXPECT_THROW(single.validate(), std::invalid_argument);

  PartitionSpec no_lps = ok;
  no_lps.lps = 0;
  EXPECT_THROW(no_lps.validate(), std::invalid_argument);

  ThreadPool pool(1);
  EXPECT_THROW(ParallelEngine(zero_la, pool), std::invalid_argument);
  EXPECT_THROW(LoopbackEngine{zero_la}, std::invalid_argument);
}

TEST(PdesEngine, SendBelowLookaheadThrowsOnBothEngines) {
  PartitionSpec spec;
  spec.lps = 2;
  spec.lookahead = 1.0;
  const Payload p{};

  LoopbackEngine ser(spec);
  ser.lp(1).set_handler([](auto&, const Payload&) {});
  EXPECT_THROW(ser.lp(0).send(1, 0.5, p), std::invalid_argument);
  EXPECT_THROW(ser.lp(0).send(7, 2.0, p), std::invalid_argument);

  ThreadPool pool(1);
  ParallelEngine par(spec, pool);
  par.lp(1).set_handler([](auto&, const Payload&) {});
  EXPECT_THROW(par.lp(0).send(1, 0.5, p), std::invalid_argument);
  EXPECT_THROW(par.lp(0).send(7, 2.0, p), std::invalid_argument);
  // A self-send is a local schedule: no lookahead floor.
  par.lp(0).set_handler([](auto&, const Payload&) {});
  EXPECT_NO_THROW(par.lp(0).send(0, 0.0, p));
}

TEST(PdesEngine, MeshDifferentialAcrossWorkerCounts) {
  PartitionSpec spec;
  spec.lps = 5;
  spec.lookahead = 0.25;
  for (const std::uint64_t seed : kSeeds) {
    LoopbackEngine ser(spec);
    const PdesWorkloadResult want = run_pdes_mesh(ser, seed, 60.0);
    ASSERT_GT(want.executed, 0u);
    ASSERT_GT(want.cancelled, 0u);  // the arm-and-cancel churn is exercised
    std::uint64_t deliveries = 0;
    for (const PdesLpResult& lp : want.lps) deliveries += lp.deliveries;
    ASSERT_GT(deliveries, 0u);

    for (const unsigned workers : kWorkerCounts) {
      ThreadPool pool(workers);
      ParallelEngine par(spec, pool);
      const PdesWorkloadResult got = run_pdes_mesh(par, seed, 60.0);
      EXPECT_EQ(got, want) << "seed=" << seed << " workers=" << workers;
      const ParallelEngine::Stats s = par.stats();
      EXPECT_GT(s.windows, 1u);
      EXPECT_EQ(s.sent, deliveries);       // everything sent ...
      EXPECT_EQ(s.committed, deliveries);  // ... was delivered (full drain)
    }
  }
}

TEST(PdesEngine, RunUntilAlignsClocksAndResumes) {
  PartitionSpec spec;
  spec.lps = 2;
  spec.lookahead = 1.0;
  ThreadPool pool(2);
  ParallelEngine eng(spec, pool);
  std::vector<double> fired;
  for (std::uint32_t i = 0; i < 2; ++i) {
    eng.lp(i).set_handler([](auto&, const Payload&) {});
    for (const double t : {1.0, 2.0, 3.0}) {
      auto& lp = eng.lp(i);
      lp.sim().schedule_at(t, [&fired, &lp] { fired.push_back(lp.now()); });
    }
  }
  EXPECT_EQ(eng.run(2.5), 4u);  // t=1 and t=2 on both LPs
  EXPECT_EQ(eng.lp(0).now(), 2.5);  // horizon alignment, like Simulator::run
  EXPECT_EQ(eng.lp(1).now(), 2.5);
  EXPECT_EQ(eng.run(), 2u);  // resumes: the two t=3 events remain
  EXPECT_EQ(fired.size(), 6u);
}

TEST(PdesEngine, CrossLpCancelAcrossWindowBoundary) {
  // LP0 arms a local cancellable timer, then a two-hop message exchange
  // (each hop = one lookahead window) comes back and cancels it -- the
  // cancellation crosses two window barriers before the timer's due time.
  PartitionSpec spec;
  spec.lps = 2;
  spec.lookahead = 1.0;

  struct Probe {
    bool timer_fired = false;
    double cancelled_at = -1;
    EventHandle timer{};
  };

  auto drive = [&](auto& eng) {
    auto probe = std::make_unique<Probe>();
    Probe* pr = probe.get();
    eng.lp(0).set_handler([pr](auto& lp, const Payload&) {
      lp.sim().cancel(pr->timer);  // the reply: call off the timer
      pr->cancelled_at = lp.now();
    });
    eng.lp(1).set_handler([](auto& lp, const Payload& p) {
      lp.send(0, 1.0, p);  // bounce straight back
    });
    eng.lp(0).sim().schedule_at(0.0, [pr, &eng] {
      auto& lp = eng.lp(0);
      pr->timer = lp.sim().schedule_cancellable(
          10.0, [pr] { pr->timer_fired = true; });
      lp.send(1, 1.0, Payload{});
    });
    eng.run();
    EXPECT_FALSE(pr->timer_fired);
    EXPECT_EQ(pr->cancelled_at, 2.0);  // two hops after t=0
    EXPECT_EQ(eng.cancelled(), 1u);
  };

  LoopbackEngine ser(spec);
  drive(ser);
  for (const unsigned workers : kWorkerCounts) {
    ThreadPool pool(workers);
    ParallelEngine par(spec, pool);
    drive(par);
    EXPECT_GE(par.stats().windows, 2u);
  }
}

// ------------------------------------------------------ cluster scenario

void expect_same_result(const cloud::ClusterResult& a,
                        const cloud::ClusterResult& b, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.ok_queries, b.ok_queries);
  EXPECT_EQ(a.degraded_queries, b.degraded_queries);
  EXPECT_EQ(a.failed_queries, b.failed_queries);
  EXPECT_EQ(a.query_ms, b.query_ms);  // bit-level: counts AND FP sums
  EXPECT_EQ(a.leaf_ms, b.leaf_ms);
  EXPECT_EQ(a.mean_leaf_utilization, b.mean_leaf_utilization);
  EXPECT_EQ(a.hedge_fraction, b.hedge_fraction);
  EXPECT_EQ(a.leaf_requests, b.leaf_requests);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.hedges, b.hedges);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.lost_requests, b.lost_requests);
  EXPECT_EQ(a.budget_denials, b.budget_denials);
  EXPECT_EQ(a.leaf_failures, b.leaf_failures);
  EXPECT_EQ(a.domain_failures, b.domain_failures);
  EXPECT_EQ(a.shed_queries, b.shed_queries);
  EXPECT_EQ(a.rejected_requests, b.rejected_requests);
  EXPECT_EQ(a.expired_drops, b.expired_drops);
  EXPECT_EQ(a.breaker_open_transitions, b.breaker_open_transitions);
  EXPECT_EQ(a.breaker_short_circuits, b.breaker_short_circuits);
  EXPECT_EQ(a.breaker_probes, b.breaker_probes);
  EXPECT_EQ(a.breaker_open_ms, b.breaker_open_ms);
  EXPECT_EQ(a.answered_per_window, b.answered_per_window);
  EXPECT_EQ(a.retry_amplification, b.retry_amplification);
  EXPECT_EQ(a.goodput_qps, b.goodput_qps);
  EXPECT_EQ(a.availability_measured, b.availability_measured);
  EXPECT_EQ(a.availability_predicted, b.availability_predicted);
  EXPECT_EQ(a.sum_result_quality, b.sum_result_quality);
  EXPECT_EQ(a.frac_over_leaf_p99, b.frac_over_leaf_p99);
}

cloud::ClusterConfig small_pdes_config(std::uint64_t seed) {
  cloud::ClusterConfig cfg;
  cfg.leaves = 12;
  cfg.query_rate_hz = 40;
  cfg.background_rate_hz = 20;
  cfg.duration_s = 3;
  cfg.seed = seed;
  cfg.goodput_window_s = 1;
  cfg.net_latency_ms = 0.5;
  cfg.leaf_groups = 3;
  return cfg;
}

cloud::ClusterConfig stacked_pdes_config(std::uint64_t seed) {
  cloud::ClusterConfig cfg;
  cfg.leaves = 10;
  cfg.query_rate_hz = 60;
  cfg.background_rate_hz = 40;
  cfg.duration_s = 4;
  cfg.seed = seed;
  cfg.goodput_window_s = 1;
  cfg.net_latency_ms = 1.0;
  cfg.leaf_groups = 4;
  cfg.leaf_queue.capacity = 16;
  cfg.leaf_queue.discipline = des::QueueDiscipline::kDeadline;
  cfg.leaf_queue.sojourn_target = 30;
  cfg.faults.enabled = true;
  cfg.faults.leaves_per_domain = 5;
  cfg.faults.burst_leaves = 3;
  cfg.faults.burst_start_s = 1.0;
  cfg.faults.burst_duration_s = 0.5;
  cfg.policy.retry.timeout_ms = 25;
  cfg.policy.retry.max_retries = 2;
  cfg.policy.budget.enabled = true;
  cfg.policy.budget.ratio = 0.2;
  cfg.policy.hedge_after_ms = 15;
  cfg.policy.quorum.quorum_fraction = 0.7;
  cfg.policy.quorum.deadline_ms = 60;
  cfg.policy.admission.enabled = true;
  cfg.policy.admission.rate_qps = 80;
  cfg.policy.admission.max_in_flight = 50;
  cfg.policy.breaker.enabled = true;
  return cfg;
}

TEST(ClusterPdes, BitIdenticalAcrossWorkerCounts) {
  for (const std::uint64_t seed : kSeeds) {
    cloud::ClusterConfig cfg = small_pdes_config(seed);
    const cloud::ClusterResult want = cloud::simulate_cluster_pdes(cfg);
    EXPECT_GT(want.queries, 0u);
    for (const unsigned workers : kWorkerCounts) {
      cfg.workers = workers;
      const cloud::ClusterResult got = cloud::simulate_cluster_pdes(cfg);
      expect_same_result(got, want, "small config");
    }
  }
}

TEST(ClusterPdes, BitIdenticalWithFullPolicyAndFaultStack) {
  cloud::ClusterConfig cfg = stacked_pdes_config(kSeeds[0]);
  const cloud::ClusterResult want = cloud::simulate_cluster_pdes(cfg);
  EXPECT_GT(want.queries, 0u);
  EXPECT_GT(want.leaf_failures, 0u);
  for (const unsigned workers : kWorkerCounts) {
    cfg.workers = workers;
    const cloud::ClusterResult got = cloud::simulate_cluster_pdes(cfg);
    expect_same_result(got, want, "policy+fault stack");
  }
}

TEST(ClusterPdes, SimulateClusterDispatchesOnNetLatency) {
  const cloud::ClusterConfig cfg = small_pdes_config(kSeeds[1]);
  expect_same_result(cloud::simulate_cluster(cfg),
                     cloud::simulate_cluster_pdes(cfg), "dispatch");
}

TEST(ClusterPdes, ConfigValidationRejections) {
  cloud::ClusterConfig cfg = small_pdes_config(kSeeds[0]);

  cloud::ClusterConfig no_net = cfg;
  no_net.net_latency_ms = 0;
  no_net.workers = 2;  // nothing for the conservative window to hide behind
  EXPECT_THROW(cloud::simulate_cluster(no_net), std::invalid_argument);

  cloud::ClusterConfig too_many_groups = cfg;
  too_many_groups.leaf_groups = cfg.leaves + 1;
  EXPECT_THROW(cloud::simulate_cluster(too_many_groups),
               std::invalid_argument);

  cloud::ClusterConfig bad_net = cfg;
  bad_net.net_latency_ms = -1;
  EXPECT_THROW(cloud::simulate_cluster(bad_net), std::invalid_argument);

  // trials x workers would oversubscribe the pool; one axis at a time.
  cloud::ClusterConfig with_workers = cfg;
  with_workers.workers = 2;
  EXPECT_THROW(cloud::run_cluster_trials(with_workers, 2),
               std::invalid_argument);
}

}  // namespace
