// Ladder/calendar event-queue coverage: differential replays against the
// reference binary heap (the determinism contract -- identical execution
// order on identical seeded workloads), plus the edge cases the ladder
// introduces over a single heap: events crossing the ladder/overflow
// boundary, generation-stamped handle reuse, and large-scale
// executed()/cancelled() bookkeeping.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "des/reference_heap.hpp"
#include "des/simulator.hpp"
#include "des/workload.hpp"
#include "util/rng.hpp"

namespace arch21::des {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 42, 2014};

TEST(DesQueueDifferential, ScheduleHeavyMatchesReferenceHeap) {
  for (const std::uint64_t seed : kSeeds) {
    const WorkloadResult ladder = replay_schedule_heavy<Simulator>(seed, 20000);
    const WorkloadResult ref =
        replay_schedule_heavy<ReferenceSimulator>(seed, 20000);
    EXPECT_EQ(ladder.order, ref.order) << "seed " << seed;
    EXPECT_TRUE(ladder == ref) << "seed " << seed;
  }
}

TEST(DesQueueDifferential, CancelHeavyMatchesReferenceHeap) {
  for (const std::uint64_t seed : kSeeds) {
    const WorkloadResult ladder = replay_cancel_heavy<Simulator>(seed, 5000);
    const WorkloadResult ref =
        replay_cancel_heavy<ReferenceSimulator>(seed, 5000);
    EXPECT_EQ(ladder.order, ref.order) << "seed " << seed;
    EXPECT_TRUE(ladder == ref) << "seed " << seed;
    EXPECT_GT(ladder.cancelled, 0u);  // the workload must exercise cancels
  }
}

TEST(DesQueueDifferential, ClusterLikeMatchesReferenceHeap) {
  for (const std::uint64_t seed : kSeeds) {
    const WorkloadResult ladder =
        replay_cluster_like<Simulator>(seed, 400, 12);
    const WorkloadResult ref =
        replay_cluster_like<ReferenceSimulator>(seed, 400, 12);
    EXPECT_EQ(ladder.order, ref.order) << "seed " << seed;
    EXPECT_TRUE(ladder == ref) << "seed " << seed;
  }
}

// A dense near-future stream anchors the ladder window tightly; events far
// beyond the window must wait in the overflow tier and still fire in
// global timestamp order as the window slides out to them.
TEST(DesQueue, FarFutureEventsCrossTheOverflowBoundary) {
  Simulator sim;
  std::vector<double> fired;
  Rng rng(99);
  auto record = [&fired, &sim] { fired.push_back(sim.now()); };
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(rng.uniform(0.0, 1.0), record);
  }
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(1e3 + rng.uniform(0.0, 1e6), record);
  }
  // Re-scheduling from inside callbacks keeps pushing past the window.
  sim.schedule_at(0.5, [&sim, record] { sim.schedule(2e6, record); });
  sim.run();
  EXPECT_EQ(fired.size(), 2001u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_DOUBLE_EQ(fired.back(), 0.5 + 2e6);
  EXPECT_TRUE(sim.idle());
}

TEST(DesQueue, CancelAfterFireReturnsFalse) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule_cancellable(1.0, [&ran] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(sim.cancelled(), 0u);
}

TEST(DesQueue, HandleReuseAfterGenerationBump) {
  Simulator sim;
  int fired = 0;
  const EventHandle h1 = sim.schedule_cancellable(1.0, [&fired] { ++fired; });
  sim.run();
  ASSERT_EQ(fired, 1);
  // The fired event's slot went back on the free list; the next
  // cancellable event reuses it under a bumped generation.
  const EventHandle h2 = sim.schedule_cancellable(1.0, [&fired] { ++fired; });
  EXPECT_EQ(h2.slot, h1.slot);
  EXPECT_NE(h2.gen, h1.gen);
  // The stale handle must not be able to cancel the slot's new tenant.
  EXPECT_FALSE(sim.cancel(h1));
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.cancelled(), 0u);
}

// --- batch-drain edge cases (PR8) -------------------------------------
// The SoA ladder drains the whole cursor bucket as one contiguous batch
// fired from a scratch span.  Two things can invalidate the remainder of
// a batch mid-flight: a callback scheduling an event that lands at or
// before the next batched timestamp (an "intruder"), and a callback
// cancelling an event later in the same batch.  Both must reproduce the
// reference heap's (t, seq) execution order element for element.

template <typename Sim>
std::vector<std::uint32_t> replay_batch_intruders(std::uint64_t seed) {
  Sim sim;
  std::vector<std::uint32_t> order;
  Rng rng(seed);
  for (std::uint32_t i = 0; i < 512; ++i) {
    // One narrow cluster, so the whole population shares a ladder bucket
    // and would drain as a single batch.
    const double t = 100.0 + rng.uniform(0.0, 1e-3);
    sim.schedule_at(t, [&order, &sim, i] {
      order.push_back(i);
      if (i % 7 == 0) {
        // Zero-delay intruder: lands at now(), ahead of every remaining
        // batched event with a strictly later timestamp.
        sim.schedule(0.0, [&order, i] { order.push_back(10'000 + i); });
      }
    });
  }
  sim.run();
  return order;
}

TEST(DesQueueBatch, IntrudersScheduledMidBatchPreserveOrder) {
  for (const std::uint64_t seed : kSeeds) {
    const auto ladder = replay_batch_intruders<Simulator>(seed);
    const auto ref = replay_batch_intruders<ReferenceSimulator>(seed);
    EXPECT_EQ(ladder, ref) << "seed " << seed;
  }
}

template <typename Sim>
std::pair<std::vector<std::uint32_t>, std::uint64_t> replay_batch_cancels(
    std::uint64_t seed) {
  using Action = typename Sim::Action;
  using Handle =
      decltype(std::declval<Sim&>().schedule_cancellable_at(0.0, Action{}));
  Sim sim;
  std::vector<std::uint32_t> order;
  Rng rng(seed);
  std::vector<Handle> handles(512);
  for (std::uint32_t i = 0; i < 512; ++i) {
    const double t = 50.0 + rng.uniform(0.0, 1e-3);
    handles[i] =
        sim.schedule_cancellable_at(t, [&order, i] { order.push_back(i); });
  }
  // Cancellers live in the same dense cluster: by construction roughly
  // half their victims are still waiting in the same batch and half have
  // already fired (cancel returns false), and both queues must agree on
  // which is which.
  for (std::uint32_t i = 0; i < 512; i += 4) {
    const double t = 50.0 + rng.uniform(0.0, 1e-3);
    sim.schedule_at(t, [&order, &sim, &handles, i] {
      order.push_back(1'000 + i);
      sim.cancel(handles[(i + 256) % 512]);
    });
  }
  sim.run();
  return {order, sim.cancelled()};
}

TEST(DesQueueBatch, CancelsLandingMidBatchPreserveOrder) {
  for (const std::uint64_t seed : kSeeds) {
    const auto [lad_order, lad_cancelled] = replay_batch_cancels<Simulator>(seed);
    const auto [ref_order, ref_cancelled] =
        replay_batch_cancels<ReferenceSimulator>(seed);
    EXPECT_EQ(lad_order, ref_order) << "seed " << seed;
    EXPECT_EQ(lad_cancelled, ref_cancelled) << "seed " << seed;
    EXPECT_GT(lad_cancelled, 0u) << "seed " << seed;
  }
}

// --- large-scale stress differential (PR8) ----------------------------
// Plain + cancellable + far-future overflow traffic with cancels issued
// from inside callbacks at pseudo-random live/dead victims: the full SoA
// surface (sorted buckets, batch drain, purge compaction, overflow
// migration, handle generations) at bench scale.  All randomness is
// consumed in execution order, so any ordering divergence derails the
// replay immediately instead of averaging out.
template <typename Sim>
WorkloadResult replay_stress_mix(std::uint64_t seed, std::uint32_t n) {
  using Action = typename Sim::Action;
  using Handle =
      decltype(std::declval<Sim&>().schedule_cancellable_at(0.0, Action{}));
  struct Ctx {
    Sim sim;
    Rng rng;
    WorkloadResult out;
    std::vector<Handle> handles;
    explicit Ctx(std::uint64_t s) : rng(s) {}
  };
  auto ctx = std::make_unique<Ctx>(seed);
  Ctx* c = ctx.get();
  c->sim.reserve(n);
  c->out.order.reserve(n);
  c->handles.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    double t = c->rng.uniform(0.0, 5000.0);
    if (i % 32 == 0) t = 5000.0 + c->rng.uniform(0.0, 1e7);  // overflow tier
    if (i % 3 == 0) {
      c->handles[i] = c->sim.schedule_cancellable_at(t, [c, i] {
        c->out.order.push_back(i);
        // Fired events kill a pseudo-random cancellable index at or
        // before their own: some victims are live, some already fired
        // or already cancelled, and both queues must agree on each.
        const auto victim =
            3 * static_cast<std::uint32_t>(c->rng.below(i / 3 + 1));
        c->sim.cancel(c->handles[victim]);
      });
    } else {
      c->sim.schedule_at(t, [c, i] { c->out.order.push_back(i); });
    }
  }
  c->sim.run();
  c->out.final_now = c->sim.now();
  c->out.executed = c->sim.executed();
  c->out.cancelled = c->sim.cancelled();
  return std::move(c->out);
}

TEST(DesQueueStress, MillionEventDifferentialMatchesReferenceHeap) {
  for (const std::uint64_t seed : kSeeds) {
    // Full seven-figure replay on one seed; the other seeds run a
    // smaller mix so the sanitizer tier stays inside its time budget.
    const std::uint32_t n = seed == 2014 ? 1'000'000 : 120'000;
    const WorkloadResult ladder = replay_stress_mix<Simulator>(seed, n);
    const WorkloadResult ref = replay_stress_mix<ReferenceSimulator>(seed, n);
    EXPECT_EQ(ladder.order, ref.order) << "seed " << seed;
    EXPECT_TRUE(ladder == ref) << "seed " << seed;
    EXPECT_EQ(ladder.events(), n) << "seed " << seed;
    EXPECT_GT(ladder.cancelled, 0u) << "seed " << seed;
  }
}

TEST(DesQueueStress, MillionEventInvariants) {
  Simulator sim;
  Rng rng(7);
  constexpr std::uint32_t kPlain = 600'000;
  constexpr std::uint32_t kCancellable = 400'000;
  sim.reserve(kPlain + kCancellable);
  std::vector<EventHandle> handles;
  handles.reserve(kCancellable);
  std::uint64_t fired = 0;
  auto count = [&fired] { ++fired; };
  for (std::uint32_t i = 0; i < kPlain + kCancellable; ++i) {
    const double t = rng.uniform(0.0, 1e4);
    if (i % 5 < 2) {  // 2 of 5 cancellable: 400k of the million
      handles.push_back(sim.schedule_cancellable_at(t, count));
    } else {
      sim.schedule_at(t, count);
    }
  }
  ASSERT_EQ(handles.size(), kCancellable);
  std::uint64_t cancels = 0;
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    ASSERT_TRUE(sim.cancel(handles[i]));
    ++cancels;
  }
  sim.run();
  EXPECT_EQ(sim.executed() + sim.cancelled(), kPlain + kCancellable);
  EXPECT_EQ(sim.cancelled(), cancels);
  EXPECT_EQ(fired, kPlain + kCancellable - cancels);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace arch21::des
