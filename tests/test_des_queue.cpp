// Ladder/calendar event-queue coverage: differential replays against the
// reference binary heap (the determinism contract -- identical execution
// order on identical seeded workloads), plus the edge cases the ladder
// introduces over a single heap: events crossing the ladder/overflow
// boundary, generation-stamped handle reuse, and large-scale
// executed()/cancelled() bookkeeping.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "des/reference_heap.hpp"
#include "des/simulator.hpp"
#include "des/workload.hpp"
#include "util/rng.hpp"

namespace arch21::des {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 42, 2014};

TEST(DesQueueDifferential, ScheduleHeavyMatchesReferenceHeap) {
  for (const std::uint64_t seed : kSeeds) {
    const WorkloadResult ladder = replay_schedule_heavy<Simulator>(seed, 20000);
    const WorkloadResult ref =
        replay_schedule_heavy<ReferenceSimulator>(seed, 20000);
    EXPECT_EQ(ladder.order, ref.order) << "seed " << seed;
    EXPECT_TRUE(ladder == ref) << "seed " << seed;
  }
}

TEST(DesQueueDifferential, CancelHeavyMatchesReferenceHeap) {
  for (const std::uint64_t seed : kSeeds) {
    const WorkloadResult ladder = replay_cancel_heavy<Simulator>(seed, 5000);
    const WorkloadResult ref =
        replay_cancel_heavy<ReferenceSimulator>(seed, 5000);
    EXPECT_EQ(ladder.order, ref.order) << "seed " << seed;
    EXPECT_TRUE(ladder == ref) << "seed " << seed;
    EXPECT_GT(ladder.cancelled, 0u);  // the workload must exercise cancels
  }
}

TEST(DesQueueDifferential, ClusterLikeMatchesReferenceHeap) {
  for (const std::uint64_t seed : kSeeds) {
    const WorkloadResult ladder =
        replay_cluster_like<Simulator>(seed, 400, 12);
    const WorkloadResult ref =
        replay_cluster_like<ReferenceSimulator>(seed, 400, 12);
    EXPECT_EQ(ladder.order, ref.order) << "seed " << seed;
    EXPECT_TRUE(ladder == ref) << "seed " << seed;
  }
}

// A dense near-future stream anchors the ladder window tightly; events far
// beyond the window must wait in the overflow tier and still fire in
// global timestamp order as the window slides out to them.
TEST(DesQueue, FarFutureEventsCrossTheOverflowBoundary) {
  Simulator sim;
  std::vector<double> fired;
  Rng rng(99);
  auto record = [&fired, &sim] { fired.push_back(sim.now()); };
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(rng.uniform(0.0, 1.0), record);
  }
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(1e3 + rng.uniform(0.0, 1e6), record);
  }
  // Re-scheduling from inside callbacks keeps pushing past the window.
  sim.schedule_at(0.5, [&sim, record] { sim.schedule(2e6, record); });
  sim.run();
  EXPECT_EQ(fired.size(), 2001u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_DOUBLE_EQ(fired.back(), 0.5 + 2e6);
  EXPECT_TRUE(sim.idle());
}

TEST(DesQueue, CancelAfterFireReturnsFalse) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule_cancellable(1.0, [&ran] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(sim.cancelled(), 0u);
}

TEST(DesQueue, HandleReuseAfterGenerationBump) {
  Simulator sim;
  int fired = 0;
  const EventHandle h1 = sim.schedule_cancellable(1.0, [&fired] { ++fired; });
  sim.run();
  ASSERT_EQ(fired, 1);
  // The fired event's slot went back on the free list; the next
  // cancellable event reuses it under a bumped generation.
  const EventHandle h2 = sim.schedule_cancellable(1.0, [&fired] { ++fired; });
  EXPECT_EQ(h2.slot, h1.slot);
  EXPECT_NE(h2.gen, h1.gen);
  // The stale handle must not be able to cancel the slot's new tenant.
  EXPECT_FALSE(sim.cancel(h1));
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.cancelled(), 0u);
}

TEST(DesQueueStress, MillionEventInvariants) {
  Simulator sim;
  Rng rng(7);
  constexpr std::uint32_t kPlain = 600'000;
  constexpr std::uint32_t kCancellable = 400'000;
  sim.reserve(kPlain + kCancellable);
  std::vector<EventHandle> handles;
  handles.reserve(kCancellable);
  std::uint64_t fired = 0;
  auto count = [&fired] { ++fired; };
  for (std::uint32_t i = 0; i < kPlain + kCancellable; ++i) {
    const double t = rng.uniform(0.0, 1e4);
    if (i % 5 < 2) {  // 2 of 5 cancellable: 400k of the million
      handles.push_back(sim.schedule_cancellable_at(t, count));
    } else {
      sim.schedule_at(t, count);
    }
  }
  ASSERT_EQ(handles.size(), kCancellable);
  std::uint64_t cancels = 0;
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    ASSERT_TRUE(sim.cancel(handles[i]));
    ++cancels;
  }
  sim.run();
  EXPECT_EQ(sim.executed() + sim.cancelled(), kPlain + kCancellable);
  EXPECT_EQ(sim.cancelled(), cancels);
  EXPECT_EQ(fired, kPlain + kCancellable - cancels);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace arch21::des
