// Tests for the memory-controller scheduler (FCFS vs FR-FCFS) and the
// collective-communication cost models.

#include <gtest/gtest.h>

#include <cmath>

#include "mem/memctrl.hpp"
#include "par/collective.hpp"
#include "util/rng.hpp"

namespace arch21 {
namespace {

using namespace mem;

TEST(MemCtrl, EmptyBatch) {
  const auto s = drain_batch({}, MemSchedule::Fcfs);
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.total_time_ns, 0.0);
}

TEST(MemCtrl, SingleStreamBothPoliciesEqual) {
  // One sequential stream: already row-friendly, nothing to reorder.
  std::vector<MemRequest> batch;
  for (int i = 0; i < 500; ++i) {
    batch.push_back({static_cast<Addr>(i) * 64, false,
                     static_cast<std::uint64_t>(i)});
  }
  const auto fcfs = drain_batch(batch, MemSchedule::Fcfs);
  const auto fr = drain_batch(batch, MemSchedule::FrFcfs);
  EXPECT_EQ(fcfs.row_hits, fr.row_hits);
  EXPECT_DOUBLE_EQ(fcfs.total_time_ns, fr.total_time_ns);
  EXPECT_GT(fcfs.row_hit_rate(), 0.99);
}

TEST(MemCtrl, FrFcfsRescuesInterleavedStreams) {
  DramConfig cfg;
  const auto batch = make_interleaved_streams(8, 64, 64, cfg.row_bytes);
  const auto fcfs = drain_batch(batch, MemSchedule::Fcfs, cfg, 16);
  const auto fr = drain_batch(batch, MemSchedule::FrFcfs, cfg, 16);
  // Interleaving thrashes the row buffer under FCFS; FR-FCFS recovers.
  EXPECT_LT(fcfs.row_hit_rate(), 0.2);
  EXPECT_GT(fr.row_hit_rate(), 0.7);
  EXPECT_LT(fr.total_time_ns, fcfs.total_time_ns * 0.7);
  EXPECT_GT(fr.throughput_gbs(), fcfs.throughput_gbs());
}

TEST(MemCtrl, ReorderingCostsWorstCaseLatency) {
  // Fairness: FR-FCFS may starve row-miss requests within the window,
  // but the drain-completion bound still holds.
  DramConfig cfg;
  const auto batch = make_interleaved_streams(4, 64, 64, cfg.row_bytes);
  const auto fcfs = drain_batch(batch, MemSchedule::Fcfs, cfg, 32);
  const auto fr = drain_batch(batch, MemSchedule::FrFcfs, cfg, 32);
  EXPECT_LE(fr.max_latency_ns, fr.total_time_ns + 1e-9);
  EXPECT_LE(fcfs.max_latency_ns, fcfs.total_time_ns + 1e-9);
  // Mean latency improves with the faster drain.
  EXPECT_LT(fr.mean_latency_ns, fcfs.mean_latency_ns);
}

TEST(MemCtrl, WindowOfOneDegeneratesToFcfs) {
  DramConfig cfg;
  const auto batch = make_interleaved_streams(8, 32, 64, cfg.row_bytes);
  const auto fr1 = drain_batch(batch, MemSchedule::FrFcfs, cfg, 1);
  const auto fcfs = drain_batch(batch, MemSchedule::Fcfs, cfg, 1);
  EXPECT_EQ(fr1.row_hits, fcfs.row_hits);
  EXPECT_DOUBLE_EQ(fr1.total_time_ns, fcfs.total_time_ns);
}

TEST(MemCtrl, BiggerWindowHelpsMore) {
  DramConfig cfg;
  const auto batch = make_interleaved_streams(16, 64, 64, cfg.row_bytes);
  const auto w4 = drain_batch(batch, MemSchedule::FrFcfs, cfg, 4);
  const auto w32 = drain_batch(batch, MemSchedule::FrFcfs, cfg, 32);
  EXPECT_GE(w32.row_hits, w4.row_hits);
}

TEST(MemCtrl, Names) {
  EXPECT_STREQ(to_string(MemSchedule::Fcfs), "fcfs");
  EXPECT_STREQ(to_string(MemSchedule::FrFcfs), "fr-fcfs");
}

using namespace par;

TEST(Collective, SingleRankIsFree) {
  AlphaBeta m;
  EXPECT_EQ(bcast_tree_s(m, 1, 1e6), 0.0);
  EXPECT_EQ(allreduce_ring_s(m, 1, 1e6), 0.0);
  EXPECT_EQ(allgather_ring_s(m, 1, 1e6), 0.0);
}

TEST(Collective, TreeCostsLogSteps) {
  AlphaBeta m{.alpha_s = 1e-6, .beta_s_per_b = 0, .gamma_s_per_b = 0};
  EXPECT_NEAR(bcast_tree_s(m, 8, 0), 3e-6, 1e-15);
  EXPECT_NEAR(bcast_tree_s(m, 9, 0), 4e-6, 1e-15);   // ceil(log2 9) = 4
  EXPECT_NEAR(bcast_tree_s(m, 1024, 0), 10e-6, 1e-15);
}

TEST(Collective, RingIsBandwidthOptimal) {
  // For huge messages the ring moves ~2n bytes regardless of P; the tree
  // moves 2n log2(P).
  AlphaBeta m;
  const unsigned p = 64;
  const double n = 1e9;
  const double ring = allreduce_ring_s(m, p, n);
  const double tree = allreduce_tree_s(m, p, n);
  EXPECT_LT(ring, tree / 4);
  // Ring beta term approaches 2 n beta.
  EXPECT_NEAR(ring, 2 * n * m.beta_s_per_b, ring * 0.2);
}

TEST(Collective, TreeWinsSmallMessages) {
  AlphaBeta m;
  const unsigned p = 64;
  EXPECT_LT(allreduce_tree_s(m, p, 8), allreduce_ring_s(m, p, 8));
}

TEST(Collective, CrossoverIsConsistent) {
  AlphaBeta m;
  for (unsigned p : {16u, 64u, 256u}) {
    const double x = allreduce_crossover_bytes(m, p);
    ASSERT_TRUE(std::isfinite(x));
    ASSERT_GT(x, 0.0);
    EXPECT_LT(allreduce_tree_s(m, p, x * 0.5), allreduce_ring_s(m, p, x * 0.5));
    EXPECT_GT(allreduce_tree_s(m, p, x * 2.0), allreduce_ring_s(m, p, x * 2.0));
  }
}

TEST(Collective, CrossoverGrowsWithRanks) {
  // More ranks = more ring latency steps = bigger messages needed.
  AlphaBeta m;
  EXPECT_LT(allreduce_crossover_bytes(m, 16),
            allreduce_crossover_bytes(m, 256));
}

TEST(Collective, CostsMonotoneInSizeAndRanks) {
  AlphaBeta m;
  EXPECT_LT(allgather_ring_s(m, 8, 1e3), allgather_ring_s(m, 8, 1e6));
  EXPECT_LT(allreduce_tree_s(m, 8, 1e6), allreduce_tree_s(m, 64, 1e6));
  EXPECT_THROW(bcast_tree_s(m, 0, 10), std::invalid_argument);
  EXPECT_THROW(bcast_tree_s(m, 4, -1), std::invalid_argument);
}

}  // namespace
}  // namespace arch21
