// Tests for the set-associative cache: geometry validation, hit/miss
// behaviour, true-LRU replacement, write-back accounting, and coherence
// hooks (invalidate/clean).

#include <gtest/gtest.h>

#include <stdexcept>

#include "mem/cache.hpp"

namespace arch21::mem {
namespace {

CacheConfig tiny() {
  // 4 sets x 2 ways x 64 B lines = 512 B.
  return {.size_bytes = 512, .line_bytes = 64, .ways = 2};
}

TEST(Cache, GeometryValidation) {
  EXPECT_THROW(Cache({.size_bytes = 500, .line_bytes = 64, .ways = 2}),
               std::invalid_argument);
  EXPECT_THROW(Cache({.size_bytes = 512, .line_bytes = 60, .ways = 2}),
               std::invalid_argument);
  EXPECT_THROW(Cache({.size_bytes = 512, .line_bytes = 64, .ways = 3}),
               std::invalid_argument);
  EXPECT_THROW(Cache({.size_bytes = 64, .line_bytes = 64, .ways = 2}),
               std::invalid_argument);
  EXPECT_EQ(tiny().sets(), 4u);
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny());
  const auto r1 = c.access(0x1000, false);
  EXPECT_FALSE(r1.hit);
  const auto r2 = c.access(0x1000, false);
  EXPECT_TRUE(r2.hit);
  // Same line, different byte: still a hit.
  EXPECT_TRUE(c.access(0x103F, false).hit);
  // Next line: miss.
  EXPECT_FALSE(c.access(0x1040, false).hit);
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictsLeastRecent) {
  Cache c(tiny());
  // Three lines mapping to the same set (stride = sets*line = 256).
  const Addr a = 0x0000;
  const Addr b = 0x0100;
  const Addr d = 0x0200;
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);        // a most recent
  const auto r = c.access(d, false);  // evicts b (LRU)
  ASSERT_TRUE(r.evicted_addr.has_value());
  EXPECT_EQ(*r.evicted_addr, b);
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
}

TEST(Cache, WritebackOnlyWhenDirty) {
  Cache c(tiny());
  const Addr a = 0x0000;
  const Addr b = 0x0100;
  const Addr d = 0x0200;
  c.access(a, true);   // dirty
  c.access(b, false);  // clean
  c.access(a, false);
  const auto r1 = c.access(d, false);  // evicts clean b
  EXPECT_FALSE(r1.writeback_addr.has_value());
  const auto r2 = c.access(b, false);  // evicts dirty a
  ASSERT_TRUE(r2.writeback_addr.has_value());
  EXPECT_EQ(*r2.writeback_addr, a);
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_EQ(c.stats().evictions, 2u);
}

TEST(Cache, WriteHitMarksDirty) {
  Cache c(tiny());
  c.access(0x0000, false);
  c.access(0x0000, true);  // dirty via write hit
  c.access(0x0100, false);
  const auto r = c.access(0x0200, false);  // evict LRU = 0x0000 (dirty)
  ASSERT_TRUE(r.writeback_addr.has_value());
}

TEST(Cache, InvalidateReportsDirty) {
  Cache c(tiny());
  c.access(0x40, true);
  EXPECT_TRUE(c.contains(0x40));
  EXPECT_TRUE(c.invalidate(0x40));   // was dirty
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_FALSE(c.invalidate(0x40));  // already gone
  c.access(0x40, false);
  EXPECT_FALSE(c.invalidate(0x40));  // clean
}

TEST(Cache, CleanDowngradesDirty) {
  Cache c(tiny());
  c.access(0x80, true);
  EXPECT_TRUE(c.clean(0x80));
  EXPECT_FALSE(c.clean(0x80));  // now clean
  EXPECT_TRUE(c.contains(0x80));
  // After clean, eviction produces no write-back.
  c.access(0x180, false);
  const auto r = c.access(0x280, false);
  EXPECT_FALSE(r.writeback_addr.has_value());
}

TEST(Cache, ContainsDoesNotPerturbLruOrStats) {
  Cache c(tiny());
  c.access(0x0000, false);
  c.access(0x0100, false);
  const auto before = c.stats().accesses;
  EXPECT_TRUE(c.contains(0x0000));
  EXPECT_EQ(c.stats().accesses, before);
  // Probing a must NOT refresh it: inserting a third line should still
  // evict a (the true LRU).
  const auto r = c.access(0x0200, false);
  ASSERT_TRUE(r.evicted_addr.has_value());
  EXPECT_EQ(*r.evicted_addr, 0x0000u);
}

TEST(Cache, ResidentLinesCount) {
  Cache c(tiny());
  EXPECT_EQ(c.resident_lines(), 0u);
  for (Addr a = 0; a < 512; a += 64) c.access(a, false);
  EXPECT_EQ(c.resident_lines(), 8u);  // exactly full
}

TEST(Cache, HitRateStats) {
  Cache c(tiny());
  EXPECT_EQ(c.stats().hit_rate(), 0.0);
  c.access(0, false);
  c.access(0, false);
  c.access(0, false);
  c.access(0, false);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.25);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
}

// Property: a cache of capacity C lines never reports more resident
// lines than C, and a working set that fits is fully retained after the
// first pass (no conflict misses under direct streaming within capacity).
class CacheCapacityProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

TEST_P(CacheCapacityProperty, FittingWorkingSetHasNoCapacityMisses) {
  const auto [size, ways] = GetParam();
  Cache c({.size_bytes = size, .line_bytes = 64, .ways = ways});
  const std::uint64_t lines = size / 64;
  // Sequential fill covers every set uniformly.
  for (Addr a = 0; a < lines * 64; a += 64) c.access(a, false);
  EXPECT_EQ(c.resident_lines(), lines);
  c.reset_stats();
  // Second pass: all hits.
  for (Addr a = 0; a < lines * 64; a += 64) c.access(a, false);
  EXPECT_EQ(c.stats().hits, lines);
  EXPECT_EQ(c.stats().misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheCapacityProperty,
    ::testing::Values(std::make_tuple(512, 1), std::make_tuple(512, 2),
                      std::make_tuple(4096, 4), std::make_tuple(32768, 8),
                      std::make_tuple(4096, 64)));  // fully associative

// Property: LRU hit rate is monotone non-decreasing in associativity for
// a cyclic conflict workload (a classic inclusion-ish property).
class AssociativityProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AssociativityProperty, MoreWaysNeverHurtCyclicWorkload) {
  const std::uint32_t ways = GetParam();
  // 8 KiB cache; workload cycles through 6 conflicting lines (stride =
  // sets*line for the 1-way case, so they collide maximally there).
  Cache c({.size_bytes = 8192, .line_bytes = 64, .ways = ways});
  const std::uint64_t stride = 8192 / ways;  // lines collide in one set
  double prev_rate = -1;
  for (int rep = 0; rep < 50; ++rep) {
    for (int i = 0; i < 6; ++i) {
      c.access(static_cast<Addr>(i) * stride, false);
    }
  }
  const double rate = c.stats().hit_rate();
  // With ways >= 6 the cyclic set fits: near-perfect hits after warmup.
  if (ways >= 8) {
    EXPECT_GT(rate, 0.95);
  }
  // With 1 way and maximal conflict, everything misses.
  if (ways == 1) {
    EXPECT_LT(rate, 0.05);
  }
  (void)prev_rate;
}

INSTANTIATE_TEST_SUITE_P(Ways, AssociativityProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace arch21::mem
