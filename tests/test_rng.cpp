// Tests for the deterministic RNG layer: bit-exact reproducibility,
// distributional sanity of every variate generator, and stream splitting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace arch21 {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedAndBounded) {
  Rng rng(3);
  std::array<int, 7> counts{};
  const int trials = 140000;
  for (int i = 0; i < trials; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    counts[v]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 7.0, trials * 0.01);
  }
}

TEST(Rng, ChanceProbability) {
  Rng rng(4);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.05);
  // Exponential: stddev == mean.
  EXPECT_NEAR(s.stddev(), 2.5, 0.08);
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.lognormal(std::log(5.0), 0.5));
  EXPECT_NEAR(percentile(xs, 0.5), 5.0, 0.15);
}

TEST(Rng, ParetoBoundsAndMean) {
  Rng rng(8);
  OnlineStats s;
  const double xm = 2.0;
  const double alpha = 3.0;
  for (int i = 0; i < 200000; ++i) {
    const double v = rng.pareto(xm, alpha);
    ASSERT_GE(v, xm);
    s.add(v);
  }
  // Mean = alpha*xm/(alpha-1) = 3.
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
}

TEST(Rng, WeibullMean) {
  Rng rng(9);
  OnlineStats s;
  const double lambda = 4.0;
  const double k = 2.0;
  for (int i = 0; i < 200000; ++i) s.add(rng.weibull(lambda, k));
  // Mean = lambda * Gamma(1 + 1/k) = 4 * Gamma(1.5) = 4 * 0.8862.
  EXPECT_NEAR(s.mean(), 4.0 * std::tgamma(1.5), 0.05);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(10);
  OnlineStats small;
  OnlineStats large;
  for (int i = 0; i < 100000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.05);
  EXPECT_NEAR(large.mean(), 200.0, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(11);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.split();
  // Child stream should not replicate the parent stream.
  Rng parent2(12);
  parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child.next() == parent.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace arch21
