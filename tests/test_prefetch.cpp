// Tests for the stride prefetcher: training, coverage on regular
// patterns, restraint on irregular ones, and honest energy accounting.

#include <gtest/gtest.h>

#include "energy/catalogue.hpp"
#include "mem/prefetch.hpp"
#include "util/rng.hpp"

namespace arch21::mem {
namespace {

class PrefetchTest : public ::testing::Test {
 protected:
  energy::Catalogue cat;
  CacheConfig l1{.size_bytes = 32768, .line_bytes = 64, .ways = 8};
  CacheConfig l2{.size_bytes = 262144, .line_bytes = 64, .ways = 8};
  CacheConfig llc{.size_bytes = 1 << 22, .line_bytes = 64, .ways = 16};
};

TEST_F(PrefetchTest, SequentialStreamGetsHighAccuracy) {
  Hierarchy h(l1, l2, llc, cat);
  StridePrefetcher pf(h);
  for (Addr a = 0; a < (1 << 22); a += 64) pf.access(a, false);
  EXPECT_GT(pf.stats().issued, 1000u);
  EXPECT_GT(pf.stats().accuracy(), 0.9);
}

TEST_F(PrefetchTest, SequentialStreamHitRateImproves) {
  // Unit-stride line walk far beyond every cache: without prefetch every
  // access is a cold DRAM miss; with prefetch most demand accesses hit.
  Hierarchy plain(l1, l2, llc, cat);
  std::uint64_t plain_l1_hits = 0;
  for (Addr a = 0; a < (1 << 22); a += 64) {
    if (plain.access(a, false) == ServiceLevel::L1) ++plain_l1_hits;
  }
  Hierarchy boosted(l1, l2, llc, cat);
  StridePrefetcher pf(boosted);
  for (Addr a = (1 << 23); a < (1 << 23) + (1 << 22); a += 64) {
    pf.access(a, false);
  }
  EXPECT_EQ(plain_l1_hits, 0u);
  EXPECT_GT(pf.stats().demand_hits_l1,
            pf.stats().demand_accesses * 8 / 10);
}

TEST_F(PrefetchTest, NonUnitStridesLearned) {
  Hierarchy h(l1, l2, llc, cat);
  StridePrefetcher pf(h);
  // Stride of 3 lines within one region family.
  for (int i = 0; i < 20000; ++i) {
    pf.access(static_cast<Addr>(i) * 192, false);
  }
  EXPECT_GT(pf.stats().accuracy(), 0.8);
}

TEST_F(PrefetchTest, RandomTrafficIssuesFewPrefetches) {
  Hierarchy h(l1, l2, llc, cat);
  StridePrefetcher pf(h);
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    pf.access(rng.below(1ull << 32) & ~63ull, false);
  }
  // No stable stride forms: prefetch volume stays small relative to
  // demand, so the energy waste is bounded.
  EXPECT_LT(pf.stats().issued, pf.stats().demand_accesses / 5);
}

TEST_F(PrefetchTest, UselessPrefetchesCostEnergy) {
  // A pathological pattern: long enough runs to arm the detector, then a
  // jump -- the prefetcher fetches lines never used, and the hierarchy's
  // energy ledger grows accordingly.
  Hierarchy plain(l1, l2, llc, cat);
  Hierarchy with_pf(l1, l2, llc, cat);
  StridePrefetcher pf(with_pf, {.table_entries = 64, .degree = 4,
                                .region_bytes = 4096});
  Rng rng(4);
  auto pattern = [&](auto&& access) {
    for (int burst = 0; burst < 2000; ++burst) {
      const Addr base = rng.below(1ull << 30) & ~63ull;
      for (int i = 0; i < 4; ++i) {
        access(base + static_cast<Addr>(i) * 64);
      }
    }
  };
  pattern([&](Addr a) { plain.access(a, false); });
  pattern([&](Addr a) { pf.access(a, false); });
  EXPECT_GT(with_pf.stats().total_energy_j, plain.stats().total_energy_j);
  EXPECT_LT(pf.stats().accuracy(), 0.7);
}

TEST_F(PrefetchTest, StatsStartClean) {
  Hierarchy h(l1, l2, llc, cat);
  StridePrefetcher pf(h);
  EXPECT_EQ(pf.stats().issued, 0u);
  EXPECT_EQ(pf.stats().accuracy(), 0.0);
}

}  // namespace
}  // namespace arch21::mem
