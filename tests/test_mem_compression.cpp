// Tests for the BDI codec: exact round trips for every scheme, scheme
// selection, compression ratios on characteristic data, and malformed-
// input handling.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/compression.hpp"
#include "util/rng.hpp"

namespace arch21::mem {
namespace {

std::vector<std::uint8_t> from_words(const std::vector<std::uint64_t>& ws) {
  std::vector<std::uint8_t> out(ws.size() * 8);
  std::memcpy(out.data(), ws.data(), out.size());
  return out;
}

void expect_roundtrip(const std::vector<std::uint8_t>& line) {
  const auto enc = bdi_compress(line);
  const auto dec = bdi_decompress(enc.bytes, line.size());
  ASSERT_EQ(dec, line) << "scheme " << to_string(enc.scheme);
}

TEST(Bdi, ZeroLineCompressesToOneByte) {
  std::vector<std::uint8_t> line(64, 0);
  const auto r = bdi_compress(line);
  EXPECT_EQ(r.scheme, BdiScheme::Zeros);
  EXPECT_EQ(r.size(), 1u);
  expect_roundtrip(line);
  EXPECT_DOUBLE_EQ(bdi_ratio(line), 64.0);
}

TEST(Bdi, RepeatedValueCompressesToNineBytes) {
  const auto line = from_words({42, 42, 42, 42, 42, 42, 42, 42});
  const auto r = bdi_compress(line);
  EXPECT_EQ(r.scheme, BdiScheme::Repeat8);
  EXPECT_EQ(r.size(), 9u);
  expect_roundtrip(line);
}

TEST(Bdi, SmallDeltasUseNarrowEncoding) {
  // Pointers into the same region: 64-bit base + 1-byte deltas.
  const auto line = from_words({0x7fff00001000, 0x7fff00001008,
                                0x7fff00001010, 0x7fff00001018,
                                0x7fff00001020, 0x7fff00001028,
                                0x7fff00001030, 0x7fff00001038});
  const auto r = bdi_compress(line);
  EXPECT_EQ(r.scheme, BdiScheme::Base8Delta1);
  EXPECT_EQ(r.size(), 1u + 8u + 8u);  // tag + base + 8 deltas
  expect_roundtrip(line);
}

TEST(Bdi, NegativeDeltasHandled) {
  const auto line = from_words({1000, 996, 1004, 992, 1008, 1000, 999, 1001});
  const auto r = bdi_compress(line);
  EXPECT_EQ(r.scheme, BdiScheme::Base8Delta1);
  expect_roundtrip(line);
}

TEST(Bdi, MediumDeltasFallBackToWiderDeltas) {
  const auto line = from_words({100000, 100000 + 20000, 100000 - 20000,
                                100000 + 30000, 100000, 100000 + 1,
                                100000 + 2, 100000 + 3});
  const auto r = bdi_compress(line);
  EXPECT_EQ(r.scheme, BdiScheme::Base8Delta2);
  expect_roundtrip(line);
}

TEST(Bdi, RandomDataStaysRaw) {
  Rng rng(1);
  std::vector<std::uint8_t> line(64);
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.below(256));
  const auto r = bdi_compress(line);
  EXPECT_EQ(r.scheme, BdiScheme::Raw);
  EXPECT_EQ(r.size(), 65u);
  expect_roundtrip(line);
}

TEST(Bdi, Int32ArrayUsesBase4) {
  // Small 32-bit integers (counts, indices): 4-byte base + 1-byte deltas
  // beats any 8-byte-base scheme.
  std::vector<std::uint32_t> vals = {500, 510, 498, 503, 505, 500, 497, 512,
                                     501, 499, 507, 500, 502, 509, 498, 500};
  std::vector<std::uint8_t> line(64);
  std::memcpy(line.data(), vals.data(), 64);
  const auto r = bdi_compress(line);
  EXPECT_EQ(r.scheme, BdiScheme::Base4Delta1);
  EXPECT_EQ(r.size(), 1u + 4u + 16u);
  expect_roundtrip(line);
}

TEST(Bdi, InvalidInputsThrow) {
  EXPECT_THROW(bdi_compress(std::vector<std::uint8_t>{}), std::invalid_argument);
  EXPECT_THROW(bdi_compress(std::vector<std::uint8_t>(63, 0)),
               std::invalid_argument);
  EXPECT_THROW(bdi_decompress(std::vector<std::uint8_t>{}, 64),
               std::invalid_argument);
  // Truncated base-delta payload.
  std::vector<std::uint8_t> bad = {
      static_cast<std::uint8_t>(BdiScheme::Base8Delta1), 1, 2};
  EXPECT_THROW(bdi_decompress(bad, 64), std::invalid_argument);
  // Unknown scheme byte.
  std::vector<std::uint8_t> unk = {200};
  EXPECT_THROW(bdi_decompress(unk, 64), std::invalid_argument);
  // Raw with wrong length.
  std::vector<std::uint8_t> short_raw = {
      static_cast<std::uint8_t>(BdiScheme::Raw), 1, 2, 3};
  EXPECT_THROW(bdi_decompress(short_raw, 64), std::invalid_argument);
}

TEST(Bdi, SchemeNames) {
  EXPECT_STREQ(to_string(BdiScheme::Zeros), "zeros");
  EXPECT_STREQ(to_string(BdiScheme::Raw), "raw");
  EXPECT_STREQ(to_string(BdiScheme::Base4Delta2), "b4d2");
}

// Property: round trip holds for every generated pattern family.
class BdiRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BdiRoundTrip, AlwaysLossless) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> line(64);
    const auto family = rng.below(6);
    switch (family) {
      case 0:  // zeros with occasional one-bit noise
        for (auto& b : line) b = rng.chance(0.02) ? 1 : 0;
        break;
      case 1: {  // repeated word
        const std::uint64_t w = rng.next();
        for (int i = 0; i < 8; ++i) std::memcpy(line.data() + i * 8, &w, 8);
        break;
      }
      case 2: {  // base + small deltas
        const std::uint64_t base = rng.next();
        for (int i = 0; i < 8; ++i) {
          const std::uint64_t w = base + rng.below(200) - 100;
          std::memcpy(line.data() + i * 8, &w, 8);
        }
        break;
      }
      case 3: {  // 32-bit values
        for (int i = 0; i < 16; ++i) {
          const auto w = static_cast<std::uint32_t>(1000 + rng.below(60000));
          std::memcpy(line.data() + i * 4, &w, 4);
        }
        break;
      }
      case 4:  // pure random
        for (auto& b : line) b = static_cast<std::uint8_t>(rng.below(256));
        break;
      case 5: {  // 16-bit samples (sensor data)
        for (int i = 0; i < 32; ++i) {
          const auto w = static_cast<std::uint16_t>(2048 + rng.below(64));
          std::memcpy(line.data() + i * 2, &w, 2);
        }
        break;
      }
    }
    const auto enc = bdi_compress(line);
    ASSERT_LE(enc.size(), 65u);
    const auto dec = bdi_decompress(enc.bytes, 64);
    ASSERT_EQ(dec, line) << "family " << family << " trial " << trial
                         << " scheme " << to_string(enc.scheme);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BdiRoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Bdi, TypicalWorkloadRatiosOrdered) {
  // Zeros > repeated > pointer-ish > random, in compression ratio.
  std::vector<std::uint8_t> zeros(64, 0);
  const auto repeated = from_words({7, 7, 7, 7, 7, 7, 7, 7});
  const auto pointers = from_words({4096, 4104, 4112, 4120, 4128, 4136, 4144,
                                    4152});
  Rng rng(3);
  std::vector<std::uint8_t> random(64);
  for (auto& b : random) b = static_cast<std::uint8_t>(rng.below(256));
  EXPECT_GT(bdi_ratio(zeros), bdi_ratio(repeated));
  EXPECT_GT(bdi_ratio(repeated), bdi_ratio(pointers));
  EXPECT_GT(bdi_ratio(pointers), bdi_ratio(random));
  EXPECT_LE(bdi_ratio(random), 1.0);
}

}  // namespace
}  // namespace arch21::mem
