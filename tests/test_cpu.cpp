// Tests for branch predictors and the interval core model, including the
// end-to-end profiled pipeline on real SR1 programs.

#include <gtest/gtest.h>

#include "cpu/branch.hpp"
#include "cpu/interval.hpp"
#include "cpu/pipeline.hpp"
#include "isa/assembler.hpp"
#include "isa/programs.hpp"
#include "util/rng.hpp"

namespace arch21::cpu {
namespace {

TEST(Branch, StaticTakenOnLoopBranch) {
  StaticTaken p;
  // Loop back-edge: taken 99 times, fall-through once.
  for (int i = 0; i < 99; ++i) p.observe(10, true);
  p.observe(10, false);
  EXPECT_EQ(p.stats().predictions, 100u);
  EXPECT_EQ(p.stats().mispredictions, 1u);
  EXPECT_NEAR(p.stats().accuracy(), 0.99, 1e-12);
}

TEST(Branch, BimodalLearnsBias) {
  Bimodal p(256);
  // Strongly not-taken branch: after warmup, no mispredictions.
  for (int i = 0; i < 100; ++i) p.observe(5, false);
  EXPECT_LE(p.stats().mispredictions, 2u);  // at most the warmup
}

TEST(Branch, BimodalHandlesTwoBranchesIndependently) {
  Bimodal p(256);
  for (int i = 0; i < 50; ++i) {
    p.observe(1, true);
    p.observe(2, false);
  }
  EXPECT_LE(p.stats().mispredictions, 3u);
}

TEST(Branch, TwoBitHysteresisSurvivesSingleFlip) {
  Bimodal p(256);
  for (int i = 0; i < 10; ++i) p.observe(7, true);  // saturate to 3
  p.observe(7, false);  // one anomaly: counter 3 -> 2
  // Next prediction is still taken (the 2-bit point).
  const auto before = p.stats().mispredictions;
  p.observe(7, true);
  EXPECT_EQ(p.stats().mispredictions, before);  // predicted correctly
}

TEST(Branch, GshareLearnsAlternatingPattern) {
  // T,N,T,N...: bimodal oscillates at counter 1<->2; gshare's history
  // disambiguates perfectly after warmup.
  Bimodal bi(256);
  Gshare gs(1024, 8);
  for (int i = 0; i < 400; ++i) {
    const bool taken = (i % 2) == 0;
    bi.observe(9, taken);
    gs.observe(9, taken);
  }
  EXPECT_GT(gs.stats().accuracy(), 0.95);
  EXPECT_GT(gs.stats().accuracy(), bi.stats().accuracy());
}

TEST(Branch, RandomBranchesDefeatEveryone) {
  Rng rng(5);
  Gshare gs;
  Bimodal bi;
  for (int i = 0; i < 20000; ++i) {
    const bool taken = rng.chance(0.5);
    gs.observe(11, taken);
    bi.observe(11, taken);
  }
  EXPECT_NEAR(gs.stats().accuracy(), 0.5, 0.05);
  EXPECT_NEAR(bi.stats().accuracy(), 0.5, 0.05);
}

TEST(Branch, ParameterValidation) {
  EXPECT_THROW(Bimodal(100), std::invalid_argument);  // not a power of two
  EXPECT_THROW(Gshare(100, 8), std::invalid_argument);
  EXPECT_THROW(Gshare(1024, 0), std::invalid_argument);
  EXPECT_THROW(Gshare(1024, 64), std::invalid_argument);
}

TEST(Interval, BaseCpiIsInverseWidth) {
  const auto b = interval_cpi({.issue_width = 4}, {});
  EXPECT_DOUBLE_EQ(b.total(), 0.25);
  EXPECT_DOUBLE_EQ(b.ipc(), 4.0);
}

TEST(Interval, PenaltiesAdditive) {
  CoreParams core;
  WorkloadRates w;
  w.branch_mpki = 10;
  w.dram_apki = 5;
  const auto b = interval_cpi(core, w);
  EXPECT_DOUBLE_EQ(b.branch, 0.01 * core.branch_penalty);
  EXPECT_DOUBLE_EQ(b.dram, 0.005 * core.dram_latency / core.mlp);
  EXPECT_DOUBLE_EQ(b.total(), b.base + b.branch + b.dram);
}

TEST(Interval, MlpOverlapsDramPenalty) {
  WorkloadRates w;
  w.dram_apki = 20;
  const auto serial = interval_cpi({.mlp = 1.0}, w);
  const auto overlapped = interval_cpi({.mlp = 4.0}, w);
  EXPECT_NEAR(serial.dram / overlapped.dram, 4.0, 1e-12);
}

TEST(Interval, Validation) {
  EXPECT_THROW(interval_cpi({.issue_width = 0}, {}), std::invalid_argument);
  EXPECT_THROW(interval_cpi({.mlp = 0.5}, {}), std::invalid_argument);
}

TEST(Pipeline, LoopCodePredictsNearPerfectly) {
  Gshare gs;
  const auto r = run_profiled(isa::programs::sum_loop(20000), {}, gs);
  EXPECT_EQ(r.stop, isa::StopReason::Halted);
  EXPECT_GT(r.branch.accuracy(), 0.99);
  EXPECT_LT(r.cpi.branch, 0.01);
  EXPECT_GT(r.cpi.ipc(), 3.0);  // clean loop runs near full width
}

TEST(Pipeline, RandomDataBranchesHurtStaticMost) {
  Rng rng(7);
  std::vector<std::uint64_t> inputs;
  for (int i = 0; i < 20000; ++i) inputs.push_back(rng.below(1000));
  const auto prog = threshold_count_program(inputs.size(), 500);

  StaticTaken st;
  Gshare gs;
  const auto r_static = run_profiled(prog, inputs, st);
  const auto r_gshare = run_profiled(prog, inputs, gs);
  // The data-dependent branch is a coin flip: static mispredicts ~50% of
  // it; gshare cannot beat randomness either but nails the loop branch.
  EXPECT_GT(r_static.rates.branch_mpki, r_gshare.rates.branch_mpki * 0.8);
  EXPECT_GT(r_static.cpi.total(), r_gshare.cpi.base);
  // The program's architectural result is predictor-independent.
  EXPECT_EQ(r_static.machine.instructions, r_gshare.machine.instructions);
}

TEST(Pipeline, MemoryRatesFlowIntoCpi) {
  // Stride walk far beyond the LLC: every access is a DRAM miss, so the
  // DRAM term dominates the CPI.
  Gshare gs;
  MemoryGeometry tiny;
  tiny.l1 = {.size_bytes = 1024, .line_bytes = 64, .ways = 2};
  tiny.l2 = {.size_bytes = 4096, .line_bytes = 64, .ways = 2};
  tiny.llc = {.size_bytes = 16384, .line_bytes = 64, .ways = 4};
  // 200 strided lines stay inside the machine's 1 MiB memory while still
  // overflowing the 16 KiB LLC.
  const auto r = run_profiled(
      isa::programs::stride_walk(0x2000, 4096, 200), {}, gs, {}, tiny);
  EXPECT_EQ(r.stop, isa::StopReason::Halted);
  EXPECT_GT(r.rates.dram_apki, 100.0);
  EXPECT_GT(r.cpi.dram, r.cpi.base);
}

TEST(Pipeline, AssemblyErrorThrows) {
  Gshare gs;
  EXPECT_THROW(run_profiled("bogus r1\n", {}, gs), std::invalid_argument);
}

TEST(Pipeline, ThresholdProgramCountsCorrectly) {
  std::vector<std::uint64_t> inputs = {100, 600, 300, 900, 500};
  Gshare gs;
  const auto prog = threshold_count_program(inputs.size(), 500);
  auto asmres = isa::assemble(prog);
  ASSERT_TRUE(asmres.ok());
  isa::Machine m(asmres.program);
  for (auto v : inputs) m.push_input(v);
  EXPECT_EQ(m.run(), isa::StopReason::Halted);
  ASSERT_EQ(m.output().size(), 1u);
  EXPECT_EQ(m.output()[0], 3u);  // 600, 900, 500 are >= 500
}

}  // namespace
}  // namespace arch21::cpu
