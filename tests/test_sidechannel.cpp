// Tests for the prime+probe side-channel lab: the shared cache leaks the
// victim's secret; way partitioning closes the channel.

#include <gtest/gtest.h>

#include "mem/sidechannel.hpp"

namespace arch21::mem {
namespace {

SidechannelConfig lab() {
  SidechannelConfig cfg;
  cfg.cache = {.size_bytes = 4096, .line_bytes = 64, .ways = 4};  // 16 sets
  cfg.trials = 40;
  cfg.noise_accesses = 2;
  return cfg;
}

TEST(PrimeProbe, RecoversSecretFromSharedCache) {
  const auto cfg = lab();
  for (std::uint32_t secret : {0u, 3u, 7u, 15u}) {
    const auto r = prime_probe_attack(cfg, secret, /*partitioned=*/false);
    EXPECT_GT(r.accuracy, 0.6) << "secret " << secret;
    EXPECT_EQ(r.secret, secret);
  }
}

TEST(PrimeProbe, PartitioningClosesTheChannel) {
  const auto cfg = lab();
  const std::uint64_t sets = cfg.cache.sets();
  for (std::uint32_t secret : {2u, 9u}) {
    const auto r = prime_probe_attack(cfg, secret, /*partitioned=*/true);
    // Under partitioning the probe sees nothing: accuracy collapses to
    // (at best) chance.
    EXPECT_LE(r.accuracy, 2.0 / static_cast<double>(sets) + 0.15)
        << "secret " << secret;
  }
}

TEST(PrimeProbe, ProbeMissesAreTheObservable) {
  const auto cfg = lab();
  const auto shared = prime_probe_attack(cfg, 5, false);
  const auto part = prime_probe_attack(cfg, 5, true);
  // The victim displaces attacker lines only in the shared configuration.
  EXPECT_GT(shared.mean_probe_misses, part.mean_probe_misses);
  EXPECT_NEAR(part.mean_probe_misses, 0.0, 1e-9);
}

TEST(PrimeProbe, SecretReducedModuloSets) {
  const auto cfg = lab();
  const auto r = prime_probe_attack(cfg, 21, false);  // 21 mod 16 = 5
  EXPECT_EQ(r.secret, 5u);
}

TEST(PrimeProbe, ChannelAccuracySummaries) {
  auto cfg = lab();
  cfg.trials = 12;  // keep the full-secret sweep fast
  const double leaky = channel_accuracy(cfg, false);
  const double sealed = channel_accuracy(cfg, true);
  EXPECT_GT(leaky, 0.5);
  EXPECT_LT(sealed, 0.25);
  EXPECT_GT(leaky, sealed * 2);
}

TEST(PrimeProbe, NoiseDegradesButDoesNotKillTheChannel) {
  auto quiet = lab();
  quiet.noise_accesses = 0;
  auto noisy = lab();
  noisy.noise_accesses = 12;
  const auto rq = prime_probe_attack(quiet, 6, false);
  const auto rn = prime_probe_attack(noisy, 6, false);
  EXPECT_GE(rq.accuracy, rn.accuracy);
  EXPECT_GT(rq.accuracy, 0.9);  // noiseless attack is near-perfect
}

TEST(PrimeProbe, DeterministicForSeed) {
  const auto cfg = lab();
  const auto a = prime_probe_attack(cfg, 4, false);
  const auto b = prime_probe_attack(cfg, 4, false);
  EXPECT_EQ(a.guesses, b.guesses);
}

}  // namespace
}  // namespace arch21::mem
