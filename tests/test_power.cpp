// Tests for the power-capped co-simulation layer (E33) and the latent
// bugs it activated: DVFS bracket validation and power-fit feasibility,
// PowerBudget NaN/drift handling, ladder assessment of non-positive
// efficiency, Facility::size_for's u > 1 hole, des::Resource p-state
// speed + start-gate semantics, the cloud powercap runtime, and the
// power-capped intent governor.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/power.hpp"
#include "cloud/powercap.hpp"
#include "cloud/resilience.hpp"
#include "core/governor.hpp"
#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "energy/budget.hpp"
#include "energy/ladder.hpp"
#include "tech/dvfs.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace arch21;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- tech::DvfsModel bracket validation + power fit ------------------------

TEST(DvfsValidation, RejectsVminOutsideOpenBracket) {
  tech::DvfsModel::Params p;
  p.vmin = p.vnom;  // floor == vnom: empty operating range
  EXPECT_THROW(tech::DvfsModel m(p), std::invalid_argument);
  p.vmin = p.vnom + 0.1;
  EXPECT_THROW(tech::DvfsModel m(p), std::invalid_argument);
  p.vmin = p.vth;  // f(vth) = 0: a "legal" supply that cannot clock
  EXPECT_THROW(tech::DvfsModel m(p), std::invalid_argument);
  p.vmin = p.vth - 0.05;
  EXPECT_THROW(tech::DvfsModel m(p), std::invalid_argument);
  p.vmin = kNan;
  EXPECT_THROW(tech::DvfsModel m(p), std::invalid_argument);
  p.vmin = -0.5;
  EXPECT_THROW(tech::DvfsModel m(p), std::invalid_argument);
  p.vmin = 0.5;  // strictly inside (vth, vnom): fine
  EXPECT_NO_THROW(tech::DvfsModel m(p));
}

TEST(DvfsValidation, RejectsDefaultedFloorAboveVnom) {
  tech::DvfsModel::Params p;
  p.vmin = 0;  // defaulted floor = vth + 50 mV ...
  p.vnom = p.vth + 0.02;  // ... which would sit above vnom
  EXPECT_THROW(tech::DvfsModel m(p), std::invalid_argument);
}

TEST(DvfsPowerFit, GenerousBudgetIsNominalAndFeasible) {
  tech::DvfsModel m(tech::DvfsModel::Params{});
  const double pnom = m.power(m.params().vnom);
  const auto fit = m.fit_voltage_for_power(pnom * 2);
  EXPECT_TRUE(fit.feasible);
  EXPECT_DOUBLE_EQ(fit.v, m.params().vnom);
  EXPECT_DOUBLE_EQ(m.voltage_for_power(pnom * 2), fit.v);
}

TEST(DvfsPowerFit, ImpossibleBudgetReportsInfeasibleAtFloor) {
  tech::DvfsModel::Params p;
  p.vmin = 0.5;
  tech::DvfsModel m(p);
  const double floor_w = m.power(0.5);
  const auto fit = m.fit_voltage_for_power(floor_w * 0.5);
  EXPECT_FALSE(fit.feasible);
  EXPECT_DOUBLE_EQ(fit.v, 0.5);  // clamped to the floor, and says so
  // The convenience form silently clamps -- same v, no feasibility bit.
  EXPECT_DOUBLE_EQ(m.voltage_for_power(floor_w * 0.5), 0.5);
}

TEST(DvfsPowerFit, MidBudgetBindsAndRoundTrips) {
  tech::DvfsModel m(tech::DvfsModel::Params{});
  const double pnom = m.power(m.params().vnom);
  const double budget = pnom * 0.5;
  const auto fit = m.fit_voltage_for_power(budget);
  ASSERT_TRUE(fit.feasible);
  EXPECT_LT(fit.v, m.params().vnom);
  // The fit fits ...
  EXPECT_LE(m.power(fit.v), budget * (1 + 1e-9));
  // ... and is the HIGHEST such supply: a nudge up breaks the budget.
  EXPECT_GT(m.power(fit.v + 0.02), budget);
}

TEST(DvfsProperties, FrequencyAndPowerMonotoneOnSweep) {
  tech::DvfsModel m(tech::DvfsModel::Params{});
  const auto pts = m.sweep(40);
  ASSERT_EQ(pts.size(), 40u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].v, pts[i - 1].v);
    EXPECT_GE(pts[i].f_hz, pts[i - 1].f_hz);
    EXPECT_GE(pts[i].power_w, pts[i - 1].power_w);
  }
  EXPECT_DOUBLE_EQ(pts.back().v, m.params().vnom);
}

TEST(DvfsProperties, EnergyPerOpIsUnimodalWithInteriorValley) {
  tech::DvfsModel m(tech::DvfsModel::Params{});
  const auto pts = m.sweep(60);
  // Unimodal: once energy/op starts rising with V it never falls again.
  bool rising = false;
  int direction_changes = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const bool up = pts[i].e_op_j > pts[i - 1].e_op_j;
    if (up && !rising) {
      rising = true;
      ++direction_changes;
    }
    if (!up && rising) ++direction_changes;  // would be a second valley
  }
  EXPECT_LE(direction_changes, 1);
  const double vstar = m.min_energy_voltage();
  EXPECT_GT(vstar, pts.front().v);
  EXPECT_LT(vstar, m.params().vnom);
  EXPECT_LE(m.energy_per_op(vstar),
            m.energy_per_op(m.params().vnom));
}

// --- energy::PowerBudget / energy::assess ----------------------------------

TEST(PowerBudget, RejectsNanNegativeAndInfiniteDraws) {
  energy::PowerBudget b("rack", 100);
  EXPECT_THROW(b.add("nan", kNan), std::invalid_argument);
  EXPECT_THROW(b.add("neg", -1), std::invalid_argument);
  EXPECT_THROW(b.add("inf", kInf), std::invalid_argument);
  EXPECT_DOUBLE_EQ(b.total(), 0);  // nothing was recorded
  EXPECT_TRUE(b.add("ok", 40));
  EXPECT_DOUBLE_EQ(b.total(), 40);
}

TEST(PowerBudget, RejectsNonPositiveOrNonFiniteCap) {
  EXPECT_THROW(energy::PowerBudget("b", 0), std::invalid_argument);
  EXPECT_THROW(energy::PowerBudget("b", -5), std::invalid_argument);
  EXPECT_THROW(energy::PowerBudget("b", kNan), std::invalid_argument);
}

TEST(PowerBudget, RemoveRecomputesSoChurnNeverDrifts) {
  energy::PowerBudget b("window", 1000);
  b.add("floor", 0.1);
  // 0.3 has no exact binary representation; a decrement-based remove
  // would accumulate error across this churn.  remove() recomputes from
  // the surviving parts, so the total stays exactly the floor's bits.
  for (int i = 0; i < 10'000; ++i) {
    b.add("dyn", 0.3);
    b.remove("dyn");
  }
  EXPECT_EQ(b.total(), 0.1);  // bitwise, not near
}

TEST(EnergyLadder, NonPositiveEfficiencyNeverMeetsARung) {
  const auto& rung = energy::ladder()[0];
  for (double bad : {0.0, -1.0, kNan, -kInf}) {
    const auto a = energy::assess(rung, bad);
    EXPECT_FALSE(a.met);
    EXPECT_GE(a.gap, 1e300);
  }
  EXPECT_TRUE(energy::assess(rung, 1e12).met);
}

// --- cloud::Facility::size_for ---------------------------------------------

TEST(FacilitySizing, RejectsUtilizationOutsideUnitInterval) {
  cloud::ServerPower srv;
  EXPECT_THROW(cloud::Facility::size_for(srv, 1.5, 1e12, 1.2),
               std::invalid_argument);
  EXPECT_THROW(cloud::Facility::size_for(srv, 1.5, 1e12, 0),
               std::invalid_argument);
  EXPECT_THROW(cloud::Facility::size_for(srv, 1.5, 1e12, -0.5),
               std::invalid_argument);
  EXPECT_THROW(cloud::Facility::size_for(srv, 1.5, 1e12, kNan),
               std::invalid_argument);
  const auto s = cloud::Facility::size_for(srv, 1.5, 1e12, 1.0);
  EXPECT_GT(s.servers, 0u);
  // At u = 1 exactly, sizing counts the full per-server throughput.
  const auto s2 = cloud::Facility::size_for(srv, 1.5, 1e12, 0.5);
  EXPECT_GT(s2.servers, s.servers);
}

// --- des::Resource: p-state speed + start gate -----------------------------

TEST(ResourceSpeed, RejectsNonPositiveOrNonFinite) {
  des::Simulator sim;
  des::Resource r(sim, 1);
  EXPECT_THROW(r.set_speed(0), std::invalid_argument);
  EXPECT_THROW(r.set_speed(-1), std::invalid_argument);
  EXPECT_THROW(r.set_speed(kNan), std::invalid_argument);
  EXPECT_THROW(r.set_speed(kInf), std::invalid_argument);
  EXPECT_NO_THROW(r.set_speed(0.25));
  EXPECT_DOUBLE_EQ(r.speed(), 0.25);
}

TEST(ResourceSpeed, ScalesServiceTimeOfNewStarts) {
  des::Simulator sim;
  des::Resource r(sim, 1);
  r.set_speed(0.5);
  double done_at = -1;
  r.request(1.0, [&](des::Time, des::Time) { done_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);  // 1.0 of work at half speed
}

TEST(ResourceSpeed, InFlightJobsKeepTheirRate) {
  des::Simulator sim;
  des::Resource r(sim, 1);
  double done_at = -1;
  r.request(1.0, [&](des::Time, des::Time) { done_at = sim.now(); });
  sim.schedule(0.25, [&] { r.set_speed(0.1); });  // mid-service downclock
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 1.0);  // unchanged: started at speed 1
}

TEST(ResourceSpeed, UnitSpeedIsBitExact) {
  des::Simulator sim;
  des::Resource r(sim, 1);
  r.set_speed(1.0);
  double done_at = -1;
  r.request(0.3, [&](des::Time, des::Time) { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, 0.3);  // IEEE: x / 1.0 == x, bitwise
}

TEST(ResourceGate, RefusalStallsStationUntilRelease) {
  des::Simulator sim;
  des::Resource r(sim, 1);
  bool open = false;
  int asks = 0;
  r.set_start_gate([&](des::Time) {
    ++asks;
    return open;
  });
  double done_at = -1;
  r.request(1.0, [&](des::Time, des::Time) { done_at = sim.now(); });
  sim.run();
  EXPECT_TRUE(r.gate_stalled());
  EXPECT_EQ(r.gate_stalls(), 1u);
  EXPECT_EQ(asks, 1);  // a stalled station does not re-ask per event
  EXPECT_EQ(done_at, -1);
  EXPECT_EQ(r.queue_length(), 1u);  // refused job kept its place
  open = true;
  sim.schedule(5.0, [&] { r.release_gate(); });
  sim.run();
  EXPECT_FALSE(r.gate_stalled());
  EXPECT_DOUBLE_EQ(done_at, 6.0);  // released at t=5 + 1.0 service
}

TEST(ResourceGate, SeesEffectiveServiceAfterSpeedScaling) {
  des::Simulator sim;
  des::Resource r(sim, 1);
  r.set_speed(0.5);
  double seen = -1;
  r.set_start_gate([&](des::Time eff) {
    seen = eff;
    return true;
  });
  r.request(1.0, nullptr);
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.0);  // 1.0 requested / 0.5 speed
}

TEST(ResourceGate, StalledJobsStillOccupyBoundedCapacity) {
  des::Simulator sim;
  des::QueuePolicy q;
  q.capacity = 1;
  des::Resource r(sim, 1, q);
  r.set_start_gate([](des::Time) { return false; });
  // Server free, gate refusing: the job waits, filling the ONE slot.
  EXPECT_TRUE(r.request(1.0, nullptr));
  EXPECT_TRUE(r.gate_stalled());
  EXPECT_FALSE(r.request(1.0, nullptr));  // full: rejected at the door
  EXPECT_FALSE(r.request(1.0, nullptr));
  EXPECT_EQ(r.rejected(), 2u);
  EXPECT_EQ(r.queue_length(), 1u);
}

TEST(ResourceGate, DetachUnstallsAndRestoresLegacyBehavior) {
  des::Simulator sim;
  des::Resource r(sim, 1);
  r.set_start_gate([](des::Time) { return false; });
  double done_at = -1;
  r.request(1.0, [&](des::Time, des::Time) { done_at = sim.now(); });
  sim.run();
  EXPECT_TRUE(r.gate_stalled());
  r.set_start_gate(nullptr);  // detach releases and starts pending work
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 1.0);
}

// --- cloud powercap: ladder, config, runtime -------------------------------

TEST(PstateLadder, AscendsAndPinsNominalExactly) {
  tech::DvfsModel dvfs((tech::DvfsModel::Params()));
  const auto ladder = cloud::pstate_ladder(dvfs, 8);
  ASSERT_EQ(ladder.size(), 8u);
  EXPECT_EQ(ladder.back().v, dvfs.params().vnom);
  EXPECT_EQ(ladder.back().speed, 1.0);        // bitwise: exact-divide rule
  EXPECT_EQ(ladder.back().power_ratio, 1.0);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].speed, ladder[i - 1].speed);
    EXPECT_GT(ladder[i].power_ratio, ladder[i - 1].power_ratio);
  }
  EXPECT_THROW(cloud::pstate_ladder(dvfs, 1), std::invalid_argument);
}

TEST(PstateLadder, CappedPstateHonorsWorstCaseDraw) {
  tech::DvfsModel dvfs((tech::DvfsModel::Params()));
  const auto ladder = cloud::pstate_ladder(dvfs, 8);
  const double idle = 120, peak = 300;
  EXPECT_EQ(cloud::capped_pstate(ladder, idle, peak, peak),
            ladder.size() - 1);  // full budget: run nominal
  EXPECT_EQ(cloud::capped_pstate(ladder, idle, peak, idle + 1e-6), 0u);
  const std::size_t p = cloud::capped_pstate(ladder, idle, peak, 0.6 * peak);
  EXPECT_LT(p, ladder.size() - 1);
  EXPECT_LE(idle + (peak - idle) * ladder[p].power_ratio, 0.6 * peak);
  if (p + 1 < ladder.size()) {
    EXPECT_GT(idle + (peak - idle) * ladder[p + 1].power_ratio, 0.6 * peak);
  }
}

TEST(PowercapConfig, ValidatesOnlyWhenEnabled) {
  cloud::PowercapConfig cfg;
  cfg.cap_fraction = -3;  // garbage, but disabled: never inspected
  EXPECT_NO_THROW(cfg.validate());
  cfg.enabled = true;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.cap_fraction = 1.0;
  EXPECT_NO_THROW(cfg.validate());
  cfg.cap_fraction = 0.2;  // 0.2 * 300 W < 120 W idle floor
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.cap_fraction = 0.6;
  cfg.window_s = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.window_s = 0.5;
  cfg.pstates = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.pstates = 8;
  cfg.pace_target = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.pace_target = 0.7;
  cfg.admit_margin = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.admit_margin = 0.85;
  cfg.dvfs.vmin = cfg.dvfs.vnom + 1;  // malformed DVFS curve propagates
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PowercapRuntime, WindowBudgetIsCapMinusIdleFloor) {
  cloud::PowercapConfig cfg;
  cfg.enabled = true;
  cfg.cap_fraction = 0.6;
  cfg.window_s = 0.5;
  cloud::PowercapRuntime rt(cfg, 20, 3.0, 0.06);
  EXPECT_DOUBLE_EQ(rt.cap_w(), 0.6 * 20 * 300);
  EXPECT_DOUBLE_EQ(rt.window_budget_j(), (3600.0 - 20 * 120) * 0.5);
  EXPECT_DOUBLE_EQ(rt.window_ms(), 500.0);
}

TEST(PowercapRuntime, UniformPolicyPinsLeavesAtCappedPstate) {
  cloud::PowercapConfig cfg;
  cfg.enabled = true;
  cfg.cap_fraction = 0.6;
  cfg.policy = cloud::PowercapPolicy::kUniform;
  cloud::PowercapRuntime rt(cfg, 2, 3.0, 0.0);
  des::Simulator sim;
  std::vector<std::unique_ptr<des::Resource>> leaves;
  leaves.push_back(std::make_unique<des::Resource>(sim, 1));
  leaves.push_back(std::make_unique<des::Resource>(sim, 1));
  rt.attach(leaves);
  const std::size_t p = cloud::capped_pstate(
      rt.ladder(), cfg.server.idle_w, cfg.server.peak_w,
      rt.cap_w() / 2);
  for (const auto& l : leaves) {
    EXPECT_DOUBLE_EQ(l->speed(), rt.ladder()[p].speed);
    EXPECT_LT(l->speed(), 1.0);  // a 60% cap really throttles
  }
  rt.detach();
}

TEST(PowercapRuntime, GovernorAdmissionPacesAndCountsShed) {
  cloud::PowercapConfig cfg;
  cfg.enabled = true;
  cfg.cap_fraction = 0.6;
  cfg.policy = cloud::PowercapPolicy::kGovernor;
  cloud::PowercapRuntime rt(cfg, 20, 3.0, 0.06);
  // The bucket starts with one token (no inrush): first query passes,
  // an immediate second at t=0 is shed.
  EXPECT_TRUE(rt.admit(0.0));
  EXPECT_FALSE(rt.admit(0.0));
  EXPECT_EQ(rt.stats().shed_queries, 1u);
  // A second's worth of refill admits roughly the sustainable rate.
  unsigned admitted = 0;
  for (int q = 0; q < 400; ++q) {
    if (rt.admit(1000.0)) ++admitted;
  }
  EXPECT_GT(admitted, 10u);
  EXPECT_LT(admitted, 200u);  // well under the 400 offered
}

TEST(PowercapRuntime, NonGovernorPoliciesAlwaysAdmit) {
  for (auto pol : {cloud::PowercapPolicy::kUniform,
                   cloud::PowercapPolicy::kPace,
                   cloud::PowercapPolicy::kRaceToIdle}) {
    cloud::PowercapConfig cfg;
    cfg.enabled = true;
    cfg.policy = pol;
    cloud::PowercapRuntime rt(cfg, 4, 3.0, 0.0);
    for (int q = 0; q < 100; ++q) EXPECT_TRUE(rt.admit(0.0));
    EXPECT_EQ(rt.stats().shed_queries, 0u);
  }
}

TEST(PowercapRuntime, OversizedJobCountsAsOverrun) {
  cloud::PowercapConfig cfg;
  cfg.enabled = true;
  cfg.cap_fraction = 0.6;
  cfg.window_s = 0.001;  // 1 ms window: one 3 ms job overruns it
  cloud::PowercapRuntime rt(cfg, 1, 3.0, 0.0);
  des::Simulator sim;
  std::vector<std::unique_ptr<des::Resource>> leaves;
  leaves.push_back(std::make_unique<des::Resource>(sim, 1));
  rt.attach(leaves);
  leaves[0]->request(3.0, nullptr);
  sim.run();
  EXPECT_EQ(rt.stats().overruns, 1u);  // admitted at a fresh window, counted
  rt.detach();
}

TEST(PowercapRuntime, WindowAccountingChargesIdleFloorWhenQuiet) {
  cloud::PowercapConfig cfg;
  cfg.enabled = true;
  cfg.cap_fraction = 0.6;
  cfg.window_s = 0.5;
  cloud::PowercapRuntime rt(cfg, 2, 3.0, 0.0);
  rt.on_window(500.0);  // one idle window
  ASSERT_EQ(rt.stats().energy_j_per_window.size(), 1u);
  EXPECT_DOUBLE_EQ(rt.stats().energy_j_per_window[0], 2 * 120 * 0.5);
  EXPECT_DOUBLE_EQ(rt.stats().peak_window_w, 2 * 120.0);
}

// --- cluster integration ---------------------------------------------------

cloud::ClusterConfig small_capped_config(cloud::PowercapPolicy pol) {
  cloud::ClusterConfig cfg;
  cfg.leaves = 4;
  cfg.query_rate_hz = 60;
  cfg.leaf_service_ms = 3.0;
  cfg.duration_s = 4;
  cfg.seed = 2014;
  cfg.goodput_window_s = 1.0;
  cfg.powercap.enabled = true;
  cfg.powercap.cap_fraction = 0.6;
  cfg.powercap.policy = pol;
  return cfg;
}

TEST(ClusterPowercap, RequiresZeroNetworkLatency) {
  auto cfg = small_capped_config(cloud::PowercapPolicy::kGovernor);
  cfg.net_latency_ms = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.net_latency_ms = 0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClusterPowercap, DisabledConfigIsUnmetered) {
  cloud::ClusterConfig cfg;
  cfg.leaves = 4;
  cfg.query_rate_hz = 40;
  cfg.duration_s = 2;
  const auto r = cloud::simulate_cluster(cfg);
  EXPECT_EQ(r.energy_j, 0);
  EXPECT_EQ(r.power_cap_w, 0);
  EXPECT_EQ(r.power_shed_queries, 0u);
  EXPECT_EQ(r.power_gate_stalls, 0u);
  EXPECT_TRUE(r.energy_j_per_window.empty());
  EXPECT_EQ(r.goodput_per_joule(), 0);  // no meter, no figure of merit
}

TEST(ClusterPowercap, CappedRunEnforcesContractAndMetersEnergy) {
  for (auto pol : {cloud::PowercapPolicy::kUniform,
                   cloud::PowercapPolicy::kPace,
                   cloud::PowercapPolicy::kRaceToIdle,
                   cloud::PowercapPolicy::kGovernor}) {
    const auto cfg = small_capped_config(pol);
    const auto r = cloud::simulate_cluster(cfg);
    EXPECT_DOUBLE_EQ(r.power_cap_w, 0.6 * 4 * 300);
    EXPECT_DOUBLE_EQ(r.power_window_s, 0.5);
    EXPECT_GT(r.energy_j, 0);
    EXPECT_GT(r.peak_window_w, 0);
    // The headline contract: no accounting window over the cap, ever.
    EXPECT_LE(r.peak_window_w, r.power_cap_w * (1 + 1e-9));
    EXPECT_EQ(r.power_overruns, 0u);
    // duration / window boundaries, the last possibly past the horizon.
    EXPECT_EQ(r.energy_j_per_window.size(), 8u);
    EXPECT_GT(r.goodput_per_joule(), 0);
  }
}

TEST(ClusterPowercap, MergeSumsEnergyAndMaxesPeak) {
  const auto cfg = small_capped_config(cloud::PowercapPolicy::kGovernor);
  auto a = cloud::simulate_cluster(cfg);
  auto cfg2 = cfg;
  cfg2.seed = 7;
  const auto b = cloud::simulate_cluster(cfg2);
  const double esum = a.energy_j + b.energy_j;
  const double pmax = std::max(a.peak_window_w, b.peak_window_w);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.energy_j, esum);
  EXPECT_DOUBLE_EQ(a.peak_window_w, pmax);
  EXPECT_EQ(a.trials, 2u);
}

TEST(ClusterPowercap, MergeRejectsMismatchedCaps) {
  const auto cfg = small_capped_config(cloud::PowercapPolicy::kGovernor);
  auto a = cloud::simulate_cluster(cfg);
  auto cfg2 = cfg;
  cfg2.powercap.cap_fraction = 0.8;
  const auto b = cloud::simulate_cluster(cfg2);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(ClusterPowercap, TrialsAreBitIdenticalAcrossPoolSizes) {
  const auto cfg = small_capped_config(cloud::PowercapPolicy::kGovernor);
  ThreadPool p1(1), p2(2);
  const auto r1 = cloud::run_cluster_trials(cfg, 3, &p1);
  const auto r2 = cloud::run_cluster_trials(cfg, 3, &p2);
  EXPECT_EQ(r1.queries, r2.queries);
  EXPECT_EQ(r1.ok_queries, r2.ok_queries);
  EXPECT_EQ(r1.power_shed_queries, r2.power_shed_queries);
  EXPECT_EQ(r1.power_gate_stalls, r2.power_gate_stalls);
  EXPECT_EQ(r1.energy_j, r2.energy_j);  // bitwise
  EXPECT_EQ(r1.peak_window_w, r2.peak_window_w);
  EXPECT_EQ(r1.energy_j_per_window, r2.energy_j_per_window);
}

TEST(PowerScenarios, LadderNamesAndUncappedReference) {
  cloud::ClusterConfig base;
  base.leaves = 4;
  base.query_rate_hz = 40;
  base.duration_s = 3;
  base.goodput_window_s = 1.0;
  base.faults.burst_leaves = 2;
  base.faults.burst_start_s = 1;
  base.faults.burst_duration_s = 0.5;
  const auto ladder = cloud::power_scenarios(base, 1);
  ASSERT_EQ(ladder.size(), 9u);
  EXPECT_EQ(ladder[0].name, "uncapped");
  EXPECT_FALSE(ladder[0].config.powercap.enabled);
  EXPECT_EQ(ladder[0].result.power_cap_w, 0);
  EXPECT_EQ(ladder[1].name, "cap 60% uniform");
  EXPECT_EQ(ladder[4].name, "cap 60% governor");
  EXPECT_EQ(ladder.back().name, "cap 100% governor");
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_TRUE(ladder[i].config.powercap.enabled);
    EXPECT_LE(ladder[i].result.peak_window_w,
              ladder[i].result.power_cap_w * (1 + 1e-9));
  }
}

// --- core::govern_capped ---------------------------------------------------

TEST(GovernCapped, GenerousCapChangesNothing) {
  tech::DvfsModel dvfs((tech::DvfsModel::Params()));
  std::array<std::uint64_t, isa::kNumIntents> mix{};
  mix.fill(1'000'000);
  const auto plain = core::govern(mix, dvfs);
  const auto capped =
      core::govern_capped(mix, dvfs, dvfs.power(dvfs.params().vnom) * 2);
  EXPECT_TRUE(capped.feasible);
  EXPECT_FALSE(capped.clamped);
  EXPECT_DOUBLE_EQ(capped.cap_v, dvfs.params().vnom);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    EXPECT_DOUBLE_EQ(capped.base.chosen_v[i], plain.chosen_v[i]);
  }
  EXPECT_DOUBLE_EQ(capped.base.hinted.energy_j, plain.hinted.energy_j);
}

TEST(GovernCapped, TightCapClampsAndSlowsThePerfPhase) {
  tech::DvfsModel dvfs((tech::DvfsModel::Params()));
  std::array<std::uint64_t, isa::kNumIntents> mix{};
  mix.fill(1'000'000);
  const double cap = dvfs.power(dvfs.params().vnom) * 0.4;
  const auto capped = core::govern_capped(mix, dvfs, cap);
  EXPECT_TRUE(capped.feasible);
  EXPECT_TRUE(capped.clamped);
  EXPECT_LT(capped.cap_v, dvfs.params().vnom);
  for (double v : capped.base.chosen_v) EXPECT_LE(v, capped.cap_v + 1e-12);
  // The capped schedule cannot hold the nominal-speed deadline.
  EXPECT_GT(capped.base.perf_time_hinted, capped.base.perf_time_nominal);
}

TEST(GovernCapped, InfeasibleCapIsReportedNotSwallowed) {
  tech::DvfsModel::Params p;
  p.vmin = 0.5;
  tech::DvfsModel dvfs(p);
  std::array<std::uint64_t, isa::kNumIntents> mix{};
  mix.fill(1'000);
  const auto capped = core::govern_capped(mix, dvfs, dvfs.power(0.5) * 0.5);
  EXPECT_FALSE(capped.feasible);
  EXPECT_DOUBLE_EQ(capped.cap_v, 0.5);  // pinned to the floor, flagged
}

}  // namespace
