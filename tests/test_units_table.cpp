// Tests for SI formatting and the text/CSV table writer.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/table.hpp"
#include "util/units.hpp"

namespace arch21 {
namespace {

using namespace units;

TEST(Units, Constants) {
  EXPECT_DOUBLE_EQ(giga, 1e9);
  EXPECT_DOUBLE_EQ(pico, 1e-12);
  EXPECT_DOUBLE_EQ(from_pJ(50.0), 50e-12);
  EXPECT_DOUBLE_EQ(to_pJ(50e-12), 50.0);
  EXPECT_DOUBLE_EQ(from_ns(10), 1e-8);
  EXPECT_DOUBLE_EQ(to_ns(1e-8), 10.0);
  EXPECT_DOUBLE_EQ(period(1e9), 1e-9);
}

TEST(Units, OpsPerWatt) {
  EXPECT_DOUBLE_EQ(ops_per_watt(1e12, 10.0), 1e11);
  EXPECT_DOUBLE_EQ(ops_per_watt(1e12, 0.0), 0.0);
}

TEST(Units, SiFormatPicksPrefix) {
  EXPECT_EQ(si_format(2.5e9, "op/s", 2), "2.50 Gop/s");
  EXPECT_EQ(si_format(1.0e12, "op/s", 1), "1.0 Top/s");
  EXPECT_EQ(si_format(10e-3, "W", 0), "10 mW");
  EXPECT_EQ(si_format(3.2e-12, "J", 1), "3.2 pJ");
  EXPECT_EQ(si_format(0.0, "W", 3), "0 W");
  EXPECT_EQ(si_format(42.0, "B", 0), "42 B");
}

TEST(Units, TimeFormat) {
  EXPECT_EQ(time_format(5e-9, 0), "5 ns");
  EXPECT_EQ(time_format(1.5, 1), "1.5 s");
}

TEST(Units, BytesFormat) {
  EXPECT_EQ(bytes_format(512, 0), "512 B");
  EXPECT_EQ(bytes_format(2048, 0), "2 KiB");
  EXPECT_EQ(bytes_format(3.5 * MiB, 1), "3.5 MiB");
  EXPECT_EQ(bytes_format(2.0 * GiB, 0), "2 GiB");
}

TEST(TextTable, RejectsEmptyHeadersAndBadRows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, AlignedOutput) {
  TextTable t({"node", "power"});
  t.row({"45nm", "130 W"});
  t.row({"22nm-long-name", "95 W"});
  std::ostringstream os;
  t.print(os, 0);
  const std::string out = os.str();
  // Header, underline, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Columns aligned: "power" in the header and both power cells start at
  // the same column offset within their lines.
  std::vector<std::string> lines;
  std::istringstream is(out);
  for (std::string l; std::getline(is, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 4u);
  const auto col = lines[0].find("power");
  ASSERT_NE(col, std::string::npos);
  EXPECT_EQ(lines[2].find("130 W"), col);
  EXPECT_EQ(lines[3].find("95 W"), col);
}

TEST(TextTable, CellAccessors) {
  TextTable t({"x"});
  t.row({"1"});
  t.row({"2"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_EQ(t.cell(1, 0), "2");
  EXPECT_THROW(t.cell(2, 0), std::out_of_range);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"name", "note"});
  t.row({"plain", "with,comma"});
  t.row({"quote\"inside", "multi\nline"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(out.find("\"multi\nline\""), std::string::npos);
}

TEST(TextTable, NumFormatsCompactly) {
  EXPECT_EQ(TextTable::num(3.14159, 3), "3.14");
  EXPECT_EQ(TextTable::num(1e12, 4), "1e+12");
  EXPECT_EQ(TextTable::num(0.5), "0.5");
}

TEST(TextTable, ToStringMatchesPrint) {
  TextTable t({"a"});
  t.row({"x"});
  std::ostringstream os;
  t.print(os, 2);
  EXPECT_EQ(t.to_string(2), os.str());
}

}  // namespace
}  // namespace arch21
