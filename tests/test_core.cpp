// Tests for the cross-layer capstone: evaluator physics, power-cap
// behaviour, Pareto-frontier correctness, the DSE engines, and the
// efficiency ladder.

#include <gtest/gtest.h>

#include "core/dse.hpp"
#include "core/evaluator.hpp"
#include "core/pareto.hpp"
#include "core/profile.hpp"
#include "energy/ladder.hpp"
#include "util/rng.hpp"

namespace arch21::core {
namespace {

DesignPoint base_design() {
  DesignPoint d;
  d.node = "22nm";
  d.vdd_scale = 1.0;
  d.cores = 16;
  d.bce_per_core = 4;
  d.llc_mib = 8;
  return d;
}

TEST(Ladder, AllRungsDemandSameEfficiency) {
  for (const auto& rung : energy::ladder()) {
    EXPECT_NEAR(rung.required_ops_per_watt(), 1e11, 1.0);
  }
  const auto a = energy::assess(energy::ladder()[1], 1e10);
  EXPECT_FALSE(a.met);
  EXPECT_NEAR(a.gap, 10.0, 1e-9);
  const auto b = energy::assess(energy::ladder()[1], 2e11);
  EXPECT_TRUE(b.met);
}

TEST(Profiles, BuiltinsAreDistinctAndSane) {
  const auto apps = {profile_health_monitor(), profile_mobile_vision(),
                     profile_graph_analytics(), profile_scientific_sim()};
  for (const auto& a : apps) {
    EXPECT_GT(a.parallel_fraction, 0.0);
    EXPECT_LE(a.parallel_fraction, 1.0);
    EXPECT_GT(a.working_set_bytes, 0.0);
  }
  EXPECT_LT(profile_graph_analytics().regularity,
            profile_scientific_sim().regularity);
  EXPECT_STREQ(to_string(PlatformClass::Sensor), "sensor");
  EXPECT_DOUBLE_EQ(power_cap_w(PlatformClass::Portable), 10.0);
  EXPECT_DOUBLE_EQ(target_ops(PlatformClass::Datacenter), 1e18);
}

TEST(Evaluator, RejectsBadInput) {
  auto d = base_design();
  d.node = "3nm";
  EXPECT_THROW(evaluate(d, profile_mobile_vision(), PlatformClass::Portable),
               std::invalid_argument);
  d = base_design();
  d.cores = 0;
  EXPECT_THROW(evaluate(d, profile_mobile_vision(), PlatformClass::Portable),
               std::invalid_argument);
}

TEST(Evaluator, MetricsInternallyConsistent) {
  const auto m = evaluate(base_design(), profile_mobile_vision(),
                          PlatformClass::Portable);
  EXPECT_GT(m.throughput_ops, 0.0);
  EXPECT_GT(m.power_w, 0.0);
  EXPECT_NEAR(m.ops_per_watt, m.throughput_ops / m.power_w, 1e-3);
  EXPECT_NEAR(m.power_w,
              m.p_compute_w + m.p_memory_w + m.p_comm_w + m.p_leak_w,
              m.power_w * 0.01);
}

TEST(Evaluator, PowerCapIsRespected) {
  // A hot-but-viable configuration throttles to the cap rather than
  // exceeding it (leakage fits; dynamic power is clipped).
  auto d = base_design();
  d.cores = 8;
  d.bce_per_core = 4;
  const auto m = evaluate(d, profile_mobile_vision(), PlatformClass::Portable);
  EXPECT_TRUE(m.meets_power_cap);
  EXPECT_LE(m.power_w, power_cap_w(PlatformClass::Portable) * 1.001);
  // And it genuinely throttled: unconstrained, this chip would draw more.
  const auto unconstrained =
      evaluate(d, profile_mobile_vision(), PlatformClass::Departmental);
  EXPECT_GT(unconstrained.power_w, power_cap_w(PlatformClass::Portable));
}

TEST(Evaluator, SensorScaleRejectsLeakyMonsters) {
  // 128 fat cores cannot even idle inside 10 mW.
  auto d = base_design();
  d.cores = 128;
  d.bce_per_core = 16;
  const auto m = evaluate(d, profile_health_monitor(), PlatformClass::Sensor);
  EXPECT_FALSE(m.meets_power_cap);
  EXPECT_EQ(m.throughput_ops, 0.0);
}

TEST(Evaluator, VoltageScalingImprovesEfficiencyUnderCap) {
  // At a tight power cap, running lower voltage yields more ops/W.
  auto hi = base_design();
  hi.vdd_scale = 1.0;
  auto lo = base_design();
  lo.vdd_scale = 0.6;
  const auto app = profile_mobile_vision();
  const auto mhi = evaluate(hi, app, PlatformClass::Portable);
  const auto mlo = evaluate(lo, app, PlatformClass::Portable);
  EXPECT_GT(mlo.ops_per_watt, mhi.ops_per_watt);
}

TEST(Evaluator, AcceleratorCoverageBoostsEfficiency) {
  auto plain = base_design();
  auto accel = base_design();
  accel.accel = accel::EngineClass::Asic;
  accel.accel_area_fraction = 0.25;
  const auto app = profile_mobile_vision();
  const auto mp = evaluate(plain, app, PlatformClass::Portable);
  const auto ma = evaluate(accel, app, PlatformClass::Portable);
  EXPECT_GT(ma.ops_per_watt, mp.ops_per_watt * 1.5);
}

TEST(Evaluator, BiggerLlcHelpsMemoryBoundApps) {
  auto small = base_design();
  small.llc_mib = 2;
  auto big = base_design();
  big.llc_mib = 32;
  const auto app = profile_graph_analytics();
  const auto ms = evaluate(small, app, PlatformClass::Departmental);
  const auto mb = evaluate(big, app, PlatformClass::Departmental);
  EXPECT_LT(mb.energy_per_op_j, ms.energy_per_op_j);
}

TEST(Evaluator, StackedDramCutsMemoryEnergy) {
  auto ddr = base_design();
  auto tsv = base_design();
  tsv.stacked_dram = true;
  const auto app = profile_scientific_sim();
  const auto md = evaluate(ddr, app, PlatformClass::Departmental);
  const auto mt = evaluate(tsv, app, PlatformClass::Departmental);
  EXPECT_LT(mt.energy_per_op_j, md.energy_per_op_j);
}

TEST(Evaluator, NewerNodeMoreEfficientAtScaledVdd) {
  // Post-Dennard subtlety the evaluator reproduces: at *nominal* supply
  // in a tight power cap, the newer node's higher leakage can lose to the
  // older node.  Once supply is scaled down (leakage quenched), the newer
  // node's lower switching energy wins -- which is exactly why the paper
  // pairs new nodes with "energy first" operation.
  auto old = base_design();
  old.node = "45nm";
  old.vdd_scale = 0.7;
  auto young = base_design();
  young.node = "22nm";
  young.vdd_scale = 0.7;
  const auto app = profile_mobile_vision();
  const auto mo = evaluate(old, app, PlatformClass::Portable);
  const auto my = evaluate(young, app, PlatformClass::Portable);
  EXPECT_GT(my.ops_per_watt, mo.ops_per_watt);
  EXPECT_LT(my.energy_per_op_j, mo.energy_per_op_j);
}

TEST(Pareto, KeepsOnlyNonDominated) {
  ParetoFrontier f;
  EvaluatedPoint p1;
  p1.metrics.throughput_ops = 100;
  p1.metrics.power_w = 10;
  EvaluatedPoint p2;  // dominated: slower and hotter
  p2.metrics.throughput_ops = 50;
  p2.metrics.power_w = 20;
  EvaluatedPoint p3;  // tradeoff: slower but cooler
  p3.metrics.throughput_ops = 50;
  p3.metrics.power_w = 5;
  EXPECT_TRUE(f.offer(p1));
  EXPECT_FALSE(f.offer(p2));
  EXPECT_TRUE(f.offer(p3));
  EXPECT_EQ(f.size(), 2u);
  // A dominator evicts existing points.
  EvaluatedPoint p4;
  p4.metrics.throughput_ops = 200;
  p4.metrics.power_w = 4;
  EXPECT_TRUE(f.offer(p4));
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.best_throughput()->metrics.throughput_ops, 200);
}

TEST(Pareto, FrontierPropertyNoDominatedPairs) {
  // Property: after many random offers, no point dominates another.
  ParetoFrontier f;
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    EvaluatedPoint p;
    p.metrics.throughput_ops = rng.uniform(1, 1000);
    p.metrics.power_w = rng.uniform(1, 100);
    p.metrics.ops_per_watt = p.metrics.throughput_ops / p.metrics.power_w;
    f.offer(p);
  }
  const auto& pts = f.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (i == j) continue;
      const auto& a = pts[i].metrics;
      const auto& b = pts[j].metrics;
      const bool dominates = a.throughput_ops >= b.throughput_ops &&
                             a.power_w <= b.power_w &&
                             (a.throughput_ops > b.throughput_ops ||
                              a.power_w < b.power_w);
      ASSERT_FALSE(dominates);
    }
  }
  // Sorted view is sorted.
  const auto sorted = f.sorted_by_power();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i].metrics.power_w, sorted[i - 1].metrics.power_w);
  }
}

TEST(DesignSpace, IndexingIsABijection) {
  DesignSpace space;
  const auto n = space.cardinality();
  EXPECT_GT(n, 1000u);
  // Distinct indices yield distinct designs (spot check).
  const auto a = space.point(0);
  const auto b = space.point(1);
  const auto c = space.point(n - 1);
  EXPECT_NE(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(Dse, GridFindsFeasibleDesignsForPortable) {
  DesignSpace space;
  // Shrink the space for test speed.
  space.nodes = {"22nm"};
  space.vdd_scales = {0.7, 1.0};
  space.core_counts = {4, 16, 64};
  space.bces = {1, 4};
  space.accel_areas = {0.0, 0.25};
  space.llc_mibs = {8};
  space.stacking = {false};
  const auto res = grid_search(space, profile_mobile_vision(),
                               PlatformClass::Portable);
  EXPECT_EQ(res.evaluated, space.cardinality());
  EXPECT_GT(res.feasible, 0u);
  EXPECT_GT(res.frontier.size(), 0u);
  ASSERT_NE(res.frontier.best_efficiency(), nullptr);
  EXPECT_GT(res.frontier.best_efficiency()->metrics.ops_per_watt, 1e9);
}

TEST(Dse, RandomSearchSubsetOfGridQuality) {
  DesignSpace space;
  space.nodes = {"22nm", "32nm"};
  space.core_counts = {4, 16, 64};
  space.llc_mibs = {8};
  const auto grid = grid_search(space, profile_mobile_vision(),
                                PlatformClass::Portable);
  const auto rnd = random_search(space, profile_mobile_vision(),
                                 PlatformClass::Portable, 200, 9);
  ASSERT_NE(grid.frontier.best_throughput(), nullptr);
  ASSERT_NE(rnd.frontier.best_throughput(), nullptr);
  // Random can at best match the exhaustive optimum.
  EXPECT_LE(rnd.frontier.best_throughput()->metrics.throughput_ops,
            grid.frontier.best_throughput()->metrics.throughput_ops * 1.0001);
  EXPECT_EQ(rnd.evaluated, 200u);
}

TEST(Dse, HillClimbFindsGoodDesignsCheaply) {
  DesignSpace space;
  space.nodes = {"22nm", "32nm"};
  space.core_counts = {4, 16, 64};
  space.llc_mibs = {8};
  const auto grid = grid_search(space, profile_mobile_vision(),
                                PlatformClass::Portable);
  const auto hc = hill_climb(space, profile_mobile_vision(),
                             PlatformClass::Portable, 10, 4);
  ASSERT_NE(hc.frontier.best_throughput(), nullptr);
  const double ratio =
      hc.frontier.best_throughput()->metrics.throughput_ops /
      grid.frontier.best_throughput()->metrics.throughput_ops;
  EXPECT_GT(ratio, 0.8);           // near-optimal
  EXPECT_LT(hc.evaluated, grid.evaluated * 3);  // reasonable budget
}

TEST(Dse, CrossLayerClosesTheLadderGapSubstantially) {
  // The paper's thesis quantified: a naive design misses the 100 Gops/W
  // target by orders of magnitude; cross-layer search (NTV + parallelism
  // + specialization + 3D) closes most of the gap on a friendly workload.
  DesignPoint naive;
  naive.node = "45nm";
  naive.vdd_scale = 1.0;
  naive.cores = 1;
  naive.bce_per_core = 16;
  naive.llc_mib = 8;
  const auto app = profile_health_monitor();
  const auto m_naive = evaluate(naive, app, PlatformClass::Portable);

  DesignSpace space;  // default space includes accel/NTV/3D axes
  const auto res = grid_search(space, app, PlatformClass::Portable);
  ASSERT_NE(res.frontier.best_efficiency(), nullptr);
  const auto& best = res.frontier.best_efficiency()->metrics;
  EXPECT_GT(best.ops_per_watt / m_naive.ops_per_watt, 50.0);
}

}  // namespace
}  // namespace arch21::core
