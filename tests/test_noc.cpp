// Tests for the interconnect models: mesh geometry/cost, link-technology
// crossovers, 3D stacking, and Rent's-rule projection.

#include <gtest/gtest.h>

#include "noc/link.hpp"
#include "noc/mesh.hpp"
#include "noc/rent.hpp"
#include "noc/stacking.hpp"
#include "util/rng.hpp"

namespace arch21::noc {
namespace {

TEST(Mesh, CoordinateMapping) {
  Mesh m(MeshConfig{.width = 4, .height = 3});
  EXPECT_EQ(m.nodes(), 12u);
  EXPECT_EQ(m.coord_of(0).x, 0u);
  EXPECT_EQ(m.coord_of(5).x, 1u);
  EXPECT_EQ(m.coord_of(5).y, 1u);
  EXPECT_EQ(m.node_of({3, 2}), 11u);
  EXPECT_THROW(m.coord_of(12), std::out_of_range);
  EXPECT_THROW(m.node_of({4, 0}), std::out_of_range);
}

TEST(Mesh, HopsAreManhattan) {
  Mesh m(MeshConfig{.width = 8, .height = 8});
  EXPECT_EQ(m.hops(0, 0), 0u);
  EXPECT_EQ(m.hops(0, 7), 7u);
  EXPECT_EQ(m.hops(0, 63), 14u);
  EXPECT_EQ(m.hops(9, 18), m.hops(18, 9));  // symmetric
}

TEST(Mesh, SendCostScalesWithDistanceAndSize) {
  Mesh m(MeshConfig{});
  const auto near = m.send(0, 1, 64);
  const auto far = m.send(0, 63, 64);
  EXPECT_LT(near.latency_s, far.latency_s);
  EXPECT_LT(near.energy_j, far.energy_j);
  const auto big = m.send(0, 1, 4096);
  EXPECT_GT(big.latency_s, near.latency_s);
  EXPECT_NEAR(big.energy_j / near.energy_j, 64.0, 1e-6);
}

TEST(Mesh, LocalDeliveryCostsNoLinkEnergy) {
  Mesh m(MeshConfig{});
  const auto self = m.send(5, 5, 64);
  EXPECT_EQ(self.hops, 0u);
  EXPECT_EQ(self.energy_j, 0.0);
}

TEST(Mesh, MeanUniformHopsMatchesMonteCarlo) {
  Mesh m(MeshConfig{.width = 8, .height = 8});
  Rng rng(12);
  double acc = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    acc += m.hops(static_cast<std::uint32_t>(rng.below(64)),
                  static_cast<std::uint32_t>(rng.below(64)));
  }
  EXPECT_NEAR(acc / trials, m.mean_uniform_hops(), 0.02);
}

TEST(Mesh, BiggerMeshCostsMoreEnergyPerBit) {
  Mesh small(MeshConfig{.width = 4, .height = 4});
  Mesh large(MeshConfig{.width = 32, .height = 32});
  EXPECT_GT(large.mean_energy_per_bit(), small.mean_energy_per_bit());
  EXPECT_GT(large.bisection_bw_bps(), small.bisection_bw_bps());
}

TEST(Mesh, BadConfigThrows) {
  EXPECT_THROW(Mesh(MeshConfig{.width = 0}), std::invalid_argument);
}

TEST(Link, EffectiveEnergyFallsWithUtilizationWhenFixedPower) {
  const auto cat = link_catalog();
  const auto* photonic = &cat[3];
  ASSERT_EQ(photonic->name, "photonic");
  EXPECT_GT(photonic->effective_j_per_bit(0.01),
            photonic->effective_j_per_bit(0.9));
  // A link with no fixed power is utilization-independent.
  const auto* tsv = &cat[1];
  ASSERT_EQ(tsv->name, "tsv-3d");
  EXPECT_DOUBLE_EQ(tsv->effective_j_per_bit(0.01),
                   tsv->effective_j_per_bit(0.9));
}

TEST(Link, PhotonicBeatsSerdesAtHighUtilization) {
  const auto cat = link_catalog();
  const auto& serdes = cat[2];
  const auto& photonic = cat[3];
  EXPECT_LT(photonic.effective_j_per_bit(0.9),
            serdes.effective_j_per_bit(0.9));
  // At very low utilization the laser's fixed power dominates.
  EXPECT_GT(photonic.effective_j_per_bit(1e-4),
            serdes.effective_j_per_bit(1e-4));
  // So there is a crossover strictly inside (0, 1).
  const double x = crossover_utilization(photonic, serdes);
  EXPECT_GT(x, 0.0);
  EXPECT_LT(x, 1.0);
}

TEST(Link, CrossoverDegenerateCases) {
  const auto cat = link_catalog();
  const auto& tsv = cat[1];
  const auto& dram = cat[4];
  // TSV is always cheaper than the DRAM bus.
  EXPECT_LT(crossover_utilization(tsv, dram), 0.0);
  EXPECT_GT(crossover_utilization(dram, tsv), 1.0);
}

TEST(Link, TransferTimeHasLatencyAndSerialization) {
  LinkTech l{.name = "x", .bandwidth_gbps = 8, .latency_ns = 100,
             .e_per_bit_pj = 1, .fixed_power_w = 0, .reach_mm = 10};
  // 8 Gbit at 8 Gbps = 1 s (+100 ns latency).
  EXPECT_NEAR(l.transfer_time_s(8e9), 1.0 + 100e-9, 1e-9);
}

TEST(Link, BadUtilizationThrows) {
  const auto cat = link_catalog();
  EXPECT_THROW(cat[0].effective_j_per_bit(0.0), std::invalid_argument);
  EXPECT_THROW(cat[0].effective_j_per_bit(1.5), std::invalid_argument);
}

TEST(Stacking, StackedBeatsOffChipOnBandwidthAndEnergy) {
  StackConfig cfg;
  const auto stacked = evaluate_stack(cfg);
  cfg.dram_layers = 0;
  const auto off = evaluate_stack(cfg);
  EXPECT_GT(stacked.bandwidth_gbs / off.bandwidth_gbs, 5.0);
  EXPECT_LT(stacked.energy_pj_bit / off.energy_pj_bit, 0.5);
}

TEST(Stacking, ThermalTaxGrowsWithLayers) {
  const auto rows = stacking_sweep(StackConfig{}, 8);
  ASSERT_EQ(rows.size(), 9u);
  for (std::size_t i = 2; i < rows.size(); ++i) {
    EXPECT_LE(rows[i].logic_power_cap_w, rows[i - 1].logic_power_cap_w);
    EXPECT_GT(rows[i].capacity_factor, rows[i - 1].capacity_factor);
  }
  // The unstacked baseline keeps its full TDP.
  EXPECT_DOUBLE_EQ(rows[0].logic_power_cap_w, StackConfig{}.logic_tdp_w);
}

TEST(Rent, TerminalsSublinearInGates) {
  RentParams rp{.t = 5.0, .p = 0.6};
  EXPECT_NEAR(rent_terminals(rp, 1.0), 5.0, 1e-12);
  // Doubling gates multiplies pins by 2^0.6 ~ 1.52, not 2.
  const double r = rent_terminals(rp, 2e6) / rent_terminals(rp, 1e6);
  EXPECT_NEAR(r, std::pow(2.0, 0.6), 1e-9);
  EXPECT_THROW(rent_terminals(rp, 0.0), std::invalid_argument);
}

TEST(Rent, BandwidthWallWidens) {
  const auto rows = bandwidth_wall({.t = 5, .p = 0.6}, 1e8, 8, 1.15);
  ASSERT_EQ(rows.size(), 9u);
  EXPECT_NEAR(rows[0].gap, 1.0, 1e-9);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].gap, rows[i - 1].gap);
  }
  // After 8 generations of 2x gates, demand/supply gap is severe.
  EXPECT_GT(rows.back().gap, 2.0);
}

}  // namespace
}  // namespace arch21::noc
