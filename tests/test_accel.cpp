// Tests for the specialization machinery: the engine ladder and the
// paper's 100x claim, offload planning with break-evens, NRE crossover
// economics, and the CGRA mapper.

#include <gtest/gtest.h>

#include <cmath>

#include "accel/cgra.hpp"
#include "accel/models.hpp"
#include "accel/nre.hpp"
#include "accel/offload.hpp"
#include "energy/catalogue.hpp"
#include "noc/link.hpp"
#include "par/taskgraph.hpp"

namespace arch21::accel {
namespace {

KernelProfile regular_kernel() {
  KernelProfile k;
  k.ops = 1e9;
  k.bytes_moved = 1e7;  // compute-intense
  k.data_parallel = 0.95;
  k.regularity = 0.95;
  return k;
}

KernelProfile irregular_kernel() {
  KernelProfile k;
  k.ops = 1e9;
  k.bytes_moved = 1e8;
  k.data_parallel = 0.2;
  k.regularity = 0.2;
  return k;
}

TEST(Ladder, OrderedGeneralToSpecialized) {
  const auto ladder = specialization_ladder();
  ASSERT_EQ(ladder.size(), 6u);
  EXPECT_EQ(ladder.front().cls, EngineClass::ScalarCpu);
  EXPECT_EQ(ladder.back().cls, EngineClass::Asic);
  // Overhead factors strictly decrease along the ladder.
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(ladder[i].overhead_factor, ladder[i - 1].overhead_factor);
  }
}

TEST(Ladder, AsicGivesRoughly100xOnRegularKernels) {
  // The paper: "Specialization can give 100x higher energy efficiency
  // than a general-purpose compute unit."
  const energy::Catalogue cat;
  const auto ladder = specialization_ladder();
  const auto& cpu = ladder.front();
  const auto& asic = ladder.back();
  const double gain = efficiency_gain(cpu, asic, regular_kernel(), cat);
  EXPECT_GT(gain, 40.0);
  EXPECT_LT(gain, 200.0);
}

TEST(Ladder, EfficiencyMonotoneOnRegularKernels) {
  const energy::Catalogue cat;
  const auto ladder = specialization_ladder();
  const auto k = regular_kernel();
  double prev = 0;
  for (const auto& e : ladder) {
    if (e.cls == EngineClass::GpuSimt || e.cls == EngineClass::Fpga) {
      // GPU/FPGA swap order depending on kernel; just require > CPU.
      EXPECT_GT(e.ops_per_watt(k, cat), ladder.front().ops_per_watt(k, cat));
      continue;
    }
    const double eff = e.ops_per_watt(k, cat);
    EXPECT_GT(eff, prev);
    prev = eff;
  }
}

TEST(Ladder, IrregularKernelsShrinkTheGain) {
  const energy::Catalogue cat;
  const auto ladder = specialization_ladder();
  const auto& cpu = ladder.front();
  const auto& gpu = ladder[2];
  const double regular = efficiency_gain(cpu, gpu, regular_kernel(), cat);
  const double irregular = efficiency_gain(cpu, gpu, irregular_kernel(), cat);
  EXPECT_GT(regular, irregular);
  // And the GPU loses most of its throughput on irregular work.
  EXPECT_LT(gpu.utilization(irregular_kernel()),
            gpu.utilization(regular_kernel()));
}

TEST(Ladder, UtilizationClamped) {
  const auto ladder = specialization_ladder();
  KernelProfile k = regular_kernel();
  k.data_parallel = 0.0;
  k.regularity = 0.0;
  for (const auto& e : ladder) {
    const double u = e.utilization(k);
    EXPECT_GE(u, 0.02);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Ladder, EngineNames) {
  EXPECT_STREQ(to_string(EngineClass::Asic), "asic");
  EXPECT_STREQ(to_string(EngineClass::Cgra), "cgra");
}

TEST(Offload, BigKernelOffloadsSmallDoesNot) {
  const energy::Catalogue cat;
  const auto ladder = specialization_ladder();
  const auto link = noc::link_catalog()[2];  // serdes-board
  KernelProfile big = regular_kernel();
  big.ops = 1e11;
  big.bytes_moved = 1e8;
  const auto d_big = plan_offload(big, ladder[0], ladder[2], link, cat);
  EXPECT_TRUE(d_big.offload_time);
  EXPECT_GT(d_big.speedup, 5.0);

  // A tiny kernel with a large payload: moving the data costs more than
  // just computing locally.
  KernelProfile small = big;
  small.ops = 1e4;
  small.bytes_moved = 1e6;
  const auto d_small = plan_offload(small, ladder[0], ladder[2], link, cat);
  EXPECT_FALSE(d_small.offload_time);  // transfer latency dominates
}

TEST(Offload, BreakevenIsConsistent) {
  const energy::Catalogue cat;
  const auto ladder = specialization_ladder();
  const auto link = noc::link_catalog()[2];
  KernelProfile k = regular_kernel();
  k.bytes_moved = k.ops * 0.01;
  const double be = breakeven_ops(k, ladder[0], ladder[2], link, cat);
  ASSERT_TRUE(std::isfinite(be));
  EXPECT_GT(be, 1.0);
  // Just above break-even offloading wins; just below it loses.
  KernelProfile above = k;
  above.ops = be * 2;
  above.bytes_moved = above.ops * 0.01;
  EXPECT_TRUE(plan_offload(above, ladder[0], ladder[2], link, cat).offload_time);
  KernelProfile below = k;
  below.ops = be / 2;
  below.bytes_moved = below.ops * 0.01;
  EXPECT_FALSE(plan_offload(below, ladder[0], ladder[2], link, cat).offload_time);
}

TEST(Offload, EnergyAndTimeCanDisagree) {
  // A fast link with high per-bit energy can make offload win on time but
  // lose on energy.
  const energy::Catalogue cat;
  const auto ladder = specialization_ladder();
  noc::LinkTech hot{.name = "hot", .bandwidth_gbps = 1000, .latency_ns = 1,
               .e_per_bit_pj = 5000, .fixed_power_w = 0, .reach_mm = 10};
  KernelProfile k = regular_kernel();
  k.ops = 1e10;
  k.bytes_moved = 1e9;
  const auto d = plan_offload(k, ladder[0], ladder[5], hot, cat);
  EXPECT_TRUE(d.offload_time);
  EXPECT_FALSE(d.offload_energy);
}

TEST(Nre, CatalogShapes) {
  const auto routes = route_catalog();
  ASSERT_EQ(routes.size(), 4u);
  // NRE rises with specialization; unit cost and energy fall.
  for (std::size_t i = 1; i < routes.size(); ++i) {
    EXPECT_GT(routes[i].nre_usd, routes[i - 1].nre_usd);
    EXPECT_LT(routes[i].energy_per_op_pj, routes[i - 1].energy_per_op_pj);
  }
}

TEST(Nre, CostPerUnitAmortizes) {
  const ImplementationRoute asic = route_catalog()[3];
  EXPECT_GT(asic.cost_per_unit(1), asic.nre_usd * 0.99);
  EXPECT_NEAR(asic.cost_per_unit(1e9), asic.unit_cost_usd, 1.0);
}

TEST(Nre, CrossoverVolumes) {
  const auto routes = route_catalog();
  const auto& sw = routes[0];
  const auto& fpga = routes[1];
  const auto& asic = routes[3];
  // ASIC (cheapest unit cost) eventually beats both.
  const double v_asic_fpga = crossover_volume(asic, fpga);
  EXPECT_GT(v_asic_fpga, 0.0);
  // At that volume the costs are indeed equal.
  EXPECT_NEAR(asic.cost_per_unit(v_asic_fpga), fpga.cost_per_unit(v_asic_fpga),
              1e-6);
  // FPGA vs software: FPGA has higher unit cost AND higher NRE -> no
  // upward crossover on cost alone (its value is energy, not dollars).
  EXPECT_LT(crossover_volume(fpga, sw), 0.0);
}

TEST(Nre, WinnersProgressWithVolume) {
  const auto routes = route_catalog();
  const auto winners = winners_by_volume(routes, 1, 1e8);
  ASSERT_GE(winners.size(), 8u);
  // Low volume: software wins; high volume: ASIC wins.
  EXPECT_EQ(winners.front().route->name, "software-on-cpu");
  EXPECT_EQ(winners.back().route->name, "asic-22nm");
  // Cost per unit is non-increasing in volume for the winner.
  for (std::size_t i = 1; i < winners.size(); ++i) {
    EXPECT_LE(winners[i].cost_per_unit, winners[i - 1].cost_per_unit + 1e-9);
  }
}

TEST(Cgra, MapsSmallGraphFeasibly) {
  const auto g = par::make_fork_join(6, 1, 8);
  const auto m = map_to_cgra(g, CgraConfig{});
  ASSERT_TRUE(m.feasible);
  EXPECT_EQ(m.used_pes, g.size());
  // All placements distinct.
  std::vector<bool> used(64, false);
  for (auto pe : m.pe_of) {
    ASSERT_GE(pe, 0);
    ASSERT_FALSE(used[static_cast<std::size_t>(pe)]);
    used[static_cast<std::size_t>(pe)] = true;
  }
  EXPECT_GT(m.throughput_ops_per_s, 0.0);
  EXPECT_GT(m.energy_per_invocation_j, 0.0);
}

TEST(Cgra, TooManyNodesInfeasible) {
  par::TaskGraph g;
  for (int i = 0; i < 100; ++i) g.add(1);
  CgraConfig cfg;
  cfg.width = 4;
  cfg.height = 4;
  EXPECT_FALSE(map_to_cgra(g, cfg).feasible);
}

TEST(Cgra, RouteLimitCanFail) {
  // A star with many leaves forces long routes from the hub on a narrow
  // fabric with a tiny route limit.
  par::TaskGraph g;
  const auto hub = g.add(1, 8);
  for (int i = 0; i < 35; ++i) {
    const auto leaf = g.add(1);
    g.add_edge(hub, leaf);
  }
  CgraConfig tight;
  tight.width = 6;
  tight.height = 6;
  tight.route_limit = 2;
  EXPECT_FALSE(map_to_cgra(g, tight).feasible);
  CgraConfig loose = tight;
  loose.route_limit = 12;
  EXPECT_TRUE(map_to_cgra(g, loose).feasible);
}

TEST(Cgra, PlacementMinimizesNeighborDistance) {
  // A chain should be placed with unit-hop edges: II = 1.
  par::TaskGraph g;
  auto prev = g.add(1, 8);
  for (int i = 0; i < 7; ++i) {
    const auto next = g.add(1, 8);
    g.add_edge(prev, next);
    prev = next;
  }
  const auto m = map_to_cgra(g, CgraConfig{});
  ASSERT_TRUE(m.feasible);
  EXPECT_EQ(m.initiation_interval_cycles, 1.0);
  EXPECT_EQ(m.total_route_hops, 7u);
}

TEST(Cgra, EnergyScalesWithRouting) {
  const auto chain_like = par::make_wavefront(3, 3, 1, 8);
  CgraConfig cfg;
  const auto m = map_to_cgra(chain_like, cfg);
  ASSERT_TRUE(m.feasible);
  const double pe_only =
      static_cast<double>(chain_like.size()) * cfg.e_pe_op_pj * 1e-12;
  EXPECT_GT(m.energy_per_invocation_j, pe_only);
}

}  // namespace
}  // namespace arch21::accel
