// Tests for the QoS colocation model and the loaded-mesh contention
// extension.

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/qos.hpp"
#include "noc/mesh.hpp"

namespace arch21 {
namespace {

using namespace cloud;

TEST(Qos, UnloadedLcMeetsSlo) {
  QosConfig cfg;
  const auto rows = colocation_sweep(cfg, false, 11);
  ASSERT_EQ(rows.size(), 11u);
  EXPECT_TRUE(rows.front().slo_met);  // be = 0
  EXPECT_LT(rows.front().lc_p99_ms, cfg.slo_p99_ms);
}

TEST(Qos, SharedInterferenceBreaksSloBeforeFullColocation) {
  QosConfig cfg;
  const auto rows = colocation_sweep(cfg, false, 11);
  EXPECT_FALSE(rows.back().slo_met);  // be = 1.0 under shared resources
  // p99 is monotone in BE load.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].lc_p99_ms, rows[i - 1].lc_p99_ms);
  }
}

TEST(Qos, PartitioningExtendsSafeColocation) {
  QosConfig cfg;
  const double shared = max_safe_be_utilization(cfg, false);
  const double part = max_safe_be_utilization(cfg, true);
  EXPECT_GT(part, shared + 0.2);  // the QoS interface buys real colocation
  EXPECT_GT(part, 0.9);           // near-full colocation with partitioning
}

TEST(Qos, PartitioningCostsBeThroughput) {
  QosConfig cfg;
  const auto shared = colocation_sweep(cfg, false, 11);
  const auto part = colocation_sweep(cfg, true, 11);
  // At equal offered BE load, the partitioned BE gets less goodput.
  EXPECT_LT(part[5].be_goodput, shared[5].be_goodput);
}

TEST(Qos, OverloadedLcIsInfinity) {
  QosConfig cfg;
  cfg.lc_rate_hz = 2000;  // rho = 2 at 1 ms service: unstable
  const auto rows = colocation_sweep(cfg, false, 3);
  EXPECT_TRUE(std::isinf(rows.front().lc_p99_ms));
  EXPECT_EQ(max_safe_be_utilization(cfg, true), 0.0);
}

TEST(MeshLoaded, ContentionInflatesLatencyOnly) {
  noc::Mesh m(noc::MeshConfig{});
  const auto zero = m.send(0, 63, 256);
  const auto mid = m.send_loaded(0, 63, 256, 0.5);
  const auto hot = m.send_loaded(0, 63, 256, 0.9);
  EXPECT_GT(mid.latency_s, zero.latency_s);
  EXPECT_GT(hot.latency_s, mid.latency_s * 2);
  EXPECT_DOUBLE_EQ(mid.energy_j, zero.energy_j);  // contention wastes time
  EXPECT_EQ(mid.hops, zero.hops);
  EXPECT_THROW(m.send_loaded(0, 1, 64, 1.0), std::invalid_argument);
  EXPECT_THROW(m.send_loaded(0, 1, 64, -0.1), std::invalid_argument);
  // Zero load reduces to the unloaded cost.
  const auto same = m.send_loaded(0, 63, 256, 0.0);
  EXPECT_DOUBLE_EQ(same.latency_s, zero.latency_s);
}

TEST(MeshLoaded, SaturationScalesWithMeshSize) {
  noc::Mesh small(noc::MeshConfig{.width = 4, .height = 4});
  noc::Mesh large(noc::MeshConfig{.width = 16, .height = 16});
  // Per-node injection budget shrinks as the mesh grows (bisection grows
  // as sqrt(N), demand as N).
  EXPECT_GT(small.saturation_injection_bps(),
            large.saturation_injection_bps());
}

}  // namespace
}  // namespace arch21
