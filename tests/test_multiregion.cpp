// Tests for the multi-region failover layer (E31): the open-loop traffic
// generator, the seeded WAN model with link up/down traces, the region /
// failover / multi-region configs and their validation, the serial
// multi-region DES, the failover-policy ladder, and the pool-size-
// independent trial aggregator replaying WAN traces bit-identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cloud/region.hpp"
#include "cloud/traffic.hpp"
#include "cloud/wan.hpp"
#include "des/simulator.hpp"
#include "util/thread_pool.hpp"

namespace arch21::cloud {
namespace {

// A small-but-live scenario: 3 regions x 4 servers, enough traffic to
// exercise every path in well under a second per trial.
MultiRegionConfig small_config() {
  MultiRegionConfig cfg;
  cfg.regions.assign(3, RegionConfig{});
  for (unsigned r = 0; r < 3; ++r) {
    cfg.regions[r].name = "r" + std::to_string(r);
    cfg.regions[r].servers = 4;
    cfg.regions[r].service_median_ms = 2.0;
    cfg.regions[r].service_sigma = 0.3;
    cfg.regions[r].p_straggler = 0.005;
  }
  cfg.wan.regions = 3;
  cfg.wan.base_latency_ms = 20;
  cfg.traffic.session_rate_hz = 60;  // ~480 q/s vs ~3.4k q/s capacity
  cfg.traffic.diurnal_period_s = 8;
  cfg.traffic.diurnal_peak_s = 4;
  cfg.duration_s = 8;
  cfg.goodput_window_s = 0.5;
  cfg.seed = 99;
  return cfg;
}

// --------------------------------------------------------------- traffic

TEST(Traffic, DeterministicSortedAndInRange) {
  const TrafficConfig cfg;
  const auto a = generate_traffic(cfg, 20, 4, 42);
  const auto b = generate_traffic(cfg, 20, 4, 42);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_ms, b[i].t_ms);
    EXPECT_EQ(a[i].cls, b[i].cls);
    EXPECT_EQ(a[i].origin, b[i].origin);
    EXPECT_GE(a[i].t_ms, 0.0);
    EXPECT_LT(a[i].t_ms, 20'000.0);
    EXPECT_LT(a[i].cls, cfg.classes.size());
    EXPECT_LT(a[i].origin, 4u);
    if (i > 0) EXPECT_GE(a[i].t_ms, a[i - 1].t_ms);
  }
  // A different seed is a different stream.
  const auto c = generate_traffic(cfg, 20, 4, 43);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].t_ms != c[i].t_ms;
  }
  EXPECT_TRUE(differs);
}

TEST(Traffic, DiurnalCurvePeaksWhereConfigured) {
  TrafficConfig cfg;
  cfg.session_rate_hz = 50;
  cfg.diurnal_amplitude = 0.5;
  cfg.diurnal_period_s = 100;
  cfg.diurnal_peak_s = 30;
  EXPECT_DOUBLE_EQ(cfg.session_rate_at(30), 75.0);   // peak = rate*(1+A)
  EXPECT_DOUBLE_EQ(cfg.session_rate_at(80), 25.0);   // trough = rate*(1-A)
  EXPECT_DOUBLE_EQ(cfg.session_rate_at(130), 75.0);  // periodic
  // And the generated stream actually follows it: more arrivals in the
  // peak half-period than the trough half-period.
  const auto reqs = generate_traffic(cfg, 100, 1, 7);
  std::size_t peak_half = 0, trough_half = 0;
  for (const auto& r : reqs) {
    const double t_s = r.t_ms * 1e-3;
    (t_s >= 5 && t_s < 55 ? peak_half : trough_half)++;
  }
  EXPECT_GT(peak_half, trough_half * 3 / 2);
}

TEST(Traffic, SessionLengthsAreHeavyTailedButTruncated) {
  TrafficConfig cfg;
  cfg.session_max_queries = 20;
  cfg.think_time_ms = 1;  // keep whole sessions inside the horizon
  const auto reqs = generate_traffic(cfg, 200, 1, 5);
  // Reconstruct session lengths from arrival bursts is fragile; instead
  // check the structural consequences: mean load is near the configured
  // mean query rate, and no single millisecond-spaced run exceeds the cap
  // by orders of magnitude (the truncation bound keeps the tail finite).
  const double qps = static_cast<double>(reqs.size()) / 200.0;
  EXPECT_NEAR(qps, cfg.mean_query_rate_hz(), cfg.mean_query_rate_hz() * 0.15);
}

TEST(Traffic, ClassMixFollowsWeights) {
  const TrafficConfig cfg;  // 75% interactive / 25% bulk
  const auto reqs = generate_traffic(cfg, 60, 2, 11);
  ASSERT_GT(reqs.size(), 1000u);
  std::size_t interactive = 0;
  for (const auto& r : reqs) interactive += r.cls == 0;
  const double frac =
      static_cast<double>(interactive) / static_cast<double>(reqs.size());
  // Classes are drawn per *session*, so queries cluster by class and the
  // variance is session-level -- keep the tolerance loose.
  EXPECT_NEAR(frac, 0.75, 0.10);
}

TEST(Traffic, ValidationNamesField) {
  TrafficConfig cfg;
  cfg.session_rate_hz = 0;
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("session_rate_hz"),
              std::string::npos);
  }
  cfg = {};
  cfg.diurnal_amplitude = 1.0;  // amplitude 1 zeroes the trough rate
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.session_alpha = 1.0;  // Pareto mean undefined at alpha <= 1
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.classes.clear();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.classes.resize(1);  // the scenario requires >= 2 SLO classes
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.classes[0].slo_ms = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.classes[1].weight = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ------------------------------------------------------------------- wan

TEST(Wan, LinkIndexIsABijection) {
  WanConfig cfg;
  cfg.regions = 5;
  std::vector<char> seen(cfg.links(), 0);
  for (unsigned a = 0; a < cfg.regions; ++a) {
    for (unsigned b = a + 1; b < cfg.regions; ++b) {
      const unsigned idx = cfg.link_index(a, b);
      ASSERT_LT(idx, cfg.links());
      EXPECT_FALSE(seen[idx]) << "link index collision at " << a << "," << b;
      seen[idx] = 1;
      // Undirected: {a,b} and {b,a} are the same link.
      EXPECT_EQ(cfg.link_index(b, a), idx);
    }
  }
}

TEST(Wan, RingLatencyUsesShorterArc) {
  WanConfig cfg;
  cfg.regions = 5;
  cfg.base_latency_ms = 10;
  cfg.intra_ms = 0.5;
  EXPECT_DOUBLE_EQ(cfg.base_latency(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(cfg.base_latency(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(cfg.base_latency(0, 2), 20.0);
  EXPECT_DOUBLE_EQ(cfg.base_latency(0, 3), 20.0);  // 5 - 3 = 2 hops
  EXPECT_DOUBLE_EQ(cfg.base_latency(0, 4), 10.0);  // wraparound neighbor
  EXPECT_DOUBLE_EQ(cfg.base_latency(4, 0), 10.0);
}

TEST(Wan, ExplicitMatrixOverridesRing) {
  WanConfig cfg;
  cfg.regions = 2;
  cfg.latency_ms = {0, 70, 70, 0};
  cfg.base_latency_ms = 10;  // must be ignored
  EXPECT_DOUBLE_EQ(cfg.base_latency(0, 1), 70.0);
  EXPECT_DOUBLE_EQ(cfg.base_latency(1, 0), 70.0);
  EXPECT_DOUBLE_EQ(cfg.base_latency(1, 1), cfg.intra_ms);
}

TEST(Wan, JitterBoundsAndDeterminism) {
  WanConfig cfg;
  cfg.regions = 3;
  cfg.base_latency_ms = 40;
  cfg.jitter_frac = 0.2;
  const Wan wan(cfg, 1000, 5);
  Rng r1(9), r2(9);
  for (int i = 0; i < 200; ++i) {
    const double a = wan.sample_latency_ms(0, 1, r1);
    EXPECT_GE(a, 40.0 * 0.8);
    EXPECT_LE(a, 40.0 * 1.2);
    EXPECT_DOUBLE_EQ(a, wan.sample_latency_ms(0, 1, r2));
  }
}

TEST(Wan, LinkTraceIsDeterministicAndReplays) {
  WanConfig cfg;
  cfg.regions = 4;
  cfg.link_faults = true;
  cfg.link = {.mtbf_hours = 5.0 / 3600.0, .mttr_hours = 1.0 / 3600.0};
  const double horizon_ms = 60'000;
  Wan a(cfg, horizon_ms, 21);
  Wan b(cfg, horizon_ms, 21);
  EXPECT_GT(a.link_failures(), 0u);
  EXPECT_EQ(a.link_failures(), b.link_failures());
  ASSERT_EQ(a.trace().events.size(), b.trace().events.size());
  for (std::size_t i = 0; i < a.trace().events.size(); ++i) {
    EXPECT_EQ(a.trace().events[i].t_hours, b.trace().events[i].t_hours);
    EXPECT_EQ(a.trace().events[i].entity, b.trace().events[i].entity);
    EXPECT_EQ(a.trace().events[i].up, b.trace().events[i].up);
  }
  // Replaying the trace flips live link state; sampling the up-fraction
  // at the end of the horizon on two replays agrees exactly.
  des::Simulator sa, sb;
  a.install(sa);
  b.install(sb);
  sa.run();
  sb.run();
  bool any_down_seen = false;
  for (unsigned x = 0; x < cfg.regions; ++x) {
    for (unsigned y = 0; y < cfg.regions; ++y) {
      EXPECT_EQ(a.link_up(x, y), b.link_up(x, y));
      any_down_seen = any_down_seen || !a.link_up(x, y);
      if (x == y) EXPECT_TRUE(a.link_up(x, y));  // intra never fails
    }
  }
  (void)any_down_seen;  // state at the final instant may be all-up
}

TEST(Wan, ValidationNamesField) {
  WanConfig cfg;
  cfg.regions = 1;
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("regions"), std::string::npos);
  }
  cfg = {};
  cfg.latency_ms = {1, 2, 3};  // not regions x regions
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.base_latency_ms = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.intra_ms = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.jitter_frac = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.link_faults = true;
  cfg.link.mtbf_hours = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// -------------------------------------------------------------- configs

TEST(RegionConfig, ServicePhysics) {
  RegionConfig r;
  r.service_median_ms = 2;
  r.service_sigma = 0.3;
  r.p_straggler = 0.01;
  r.straggler_scale_ms = 30;
  r.straggler_alpha = 1.5;
  r.servers = 4;
  // Lognormal-body mean + Pareto straggler mean, no QoS inflation yet.
  const double body = 0.99 * 2.0 * std::exp(0.3 * 0.3 / 2);
  const double straggler = 0.01 * 30.0 * 1.5 / 0.5;
  EXPECT_DOUBLE_EQ(r.qos_inflation(), 1.0);
  EXPECT_NEAR(r.mean_service_ms(), body + straggler, 1e-12);
  EXPECT_NEAR(r.capacity_qps(), 4000.0 / (body + straggler), 1e-9);

  // Colocated BE load inflates service and shrinks capacity; hardware
  // partitioning caps the damage.
  RegionConfig shared = r;
  shared.be_utilization = 0.5;
  shared.qos_partitioned = false;
  RegionConfig part = shared;
  part.qos_partitioned = true;
  EXPECT_GT(shared.qos_inflation(), part.qos_inflation());
  EXPECT_GT(part.qos_inflation(), 1.0);
  EXPECT_LT(shared.capacity_qps(), part.capacity_qps());

  // Erlang-C sojourn: finite below capacity, rising with load, infinite
  // past it.
  const double cap = r.capacity_qps();
  const double low = r.predicted_sojourn_ms(cap * 0.3);
  const double high = r.predicted_sojourn_ms(cap * 0.9);
  EXPECT_TRUE(std::isfinite(low));
  EXPECT_GT(high, low);
  EXPECT_GE(low, r.mean_service_ms());  // sojourn includes service
  EXPECT_TRUE(std::isinf(r.predicted_sojourn_ms(cap * 1.1)));
}

TEST(RegionConfig, ValidationNamesField) {
  RegionConfig r;
  r.servers = 0;
  try {
    r.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("servers"), std::string::npos);
  }
  r = {};
  r.service_median_ms = 0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = {};
  r.straggler_alpha = 1.0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = {};
  r.be_utilization = 1.5;
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(FailoverPolicy, ValidationNamesField) {
  FailoverPolicy p;
  p.health_interval_s = 0;
  try {
    p.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("health_interval_s"),
              std::string::npos);
  }
  p = {};
  p.unhealthy_after = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.healthy_after = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.admission_cap_frac = 0.5;
  p.admission_burst = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.timeout_ms = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.budget_enabled = true;
  p.budget_ratio = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(MultiRegionConfig, ValidationNamesField) {
  MultiRegionConfig cfg = small_config();
  cfg.validate();  // the baseline must be valid

  MultiRegionConfig c = small_config();
  c.regions.resize(1);
  try {
    c.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("regions"), std::string::npos);
  }
  c = small_config();
  c.wan.regions = 5;  // mismatch with regions.size()
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.duration_s = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.goodput_window_s = -1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.blackout_region = 7;  // out of range (kNoBlackout would be fine)
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.blackout_region = 0;
  c.blackout_start_s = -1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.grayout_region = 7;  // out of range (kNoBlackout would be fine)
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.grayout_region = 0;
  c.grayout_duration_s = 2;
  c.grayout_slow_factor = 1.0;  // "slowdown" of 1x is not a fault
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.grayout_slow_factor = 4.0;
  EXPECT_NO_THROW(c.validate());
  // One disruption per run: the hysteresis windows cannot measure around
  // a blackout and a grayout at once.
  c.blackout_region = 1;
  c.blackout_duration_s = 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(RoutePolicy, NamesAreDistinct) {
  EXPECT_STRNE(to_string(RoutePolicy::kLatencyWeighted),
               to_string(RoutePolicy::kCapacityAware));
  EXPECT_STRNE(to_string(RoutePolicy::kCapacityAware),
               to_string(RoutePolicy::kStickySpillover));
}

// ------------------------------------------------------------ simulation

TEST(MultiRegion, ConservesRequestsAndWindows) {
  const MultiRegionConfig cfg = small_config();
  const auto r = simulate_multiregion(cfg);
  EXPECT_GT(r.requests, 1000u);
  // Every offered request resolves exactly one way.
  EXPECT_EQ(r.requests, r.answered + r.failed + r.shed);
  EXPECT_GE(r.attempts, r.answered);
  // Caps are off, so the fail-open balancer never sheds and every
  // request costs exactly 1 + retries sends.
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.attempts, r.requests + r.retries);
  // Healthy, underloaded, no faults: nearly everything is answered.
  EXPECT_GT(r.goodput_qps, 0.9 * static_cast<double>(r.requests) /
                               cfg.duration_s);
  // The windowed series account for every answered request, globally and
  // by serving region.
  std::uint64_t win_sum = 0;
  for (auto w : r.answered_per_window) win_sum += w;
  EXPECT_EQ(win_sum, r.answered);
  ASSERT_EQ(r.region_answered_per_window.size(), cfg.regions.size());
  std::uint64_t region_sum = 0;
  ASSERT_EQ(r.regions.size(), cfg.regions.size());
  for (std::size_t i = 0; i < r.regions.size(); ++i) {
    for (auto w : r.region_answered_per_window[i]) region_sum += w;
    EXPECT_LE(r.regions[i].utilization, 1.0);
  }
  EXPECT_EQ(region_sum, r.answered);
  EXPECT_DOUBLE_EQ(r.goodput_window_s, cfg.goodput_window_s);
  // Both classes saw traffic and mostly met their SLOs at low load.
  ASSERT_EQ(r.classes.size(), 2u);
  for (const auto& c : r.classes) {
    EXPECT_GT(c.answered, 0u);
    EXPECT_GE(c.answered, c.slo_met);
    EXPECT_GT(static_cast<double>(c.slo_met),
              0.8 * static_cast<double>(c.answered));
  }
  // And the run is deterministic.
  const auto r2 = simulate_multiregion(cfg);
  EXPECT_EQ(r.answered, r2.answered);
  EXPECT_EQ(r.attempts, r2.attempts);
  EXPECT_TRUE(r.request_ms == r2.request_ms);
}

TEST(MultiRegion, LatencyRoutingKeepsTrafficLocal) {
  MultiRegionConfig cfg = small_config();
  cfg.route = RoutePolicy::kLatencyWeighted;
  const auto r = simulate_multiregion(cfg);
  // With symmetric healthy regions and latency routing, each region
  // serves (almost) exactly its own origin zone's queries -- routed
  // counts are all nonzero and no region starves.
  for (const auto& rs : r.regions) {
    EXPECT_GT(rs.routed, 100u);
    EXPECT_GT(rs.completed, 100u);
  }
}

TEST(MultiRegion, BlackoutEvictsLosesAndReadmits) {
  MultiRegionConfig cfg = small_config();
  cfg.blackout_region = 1;
  cfg.blackout_start_s = 2;
  cfg.blackout_duration_s = 3;
  cfg.failover.healthy_after = 2;
  const auto r = simulate_multiregion(cfg);
  const RegionStats& br = r.regions[1];
  // Requests in flight toward the dark region vanish and must be
  // recovered by client timeouts.
  EXPECT_GT(r.lost_requests, 0u);
  EXPECT_GT(br.lost, 0u);
  EXPECT_GT(r.timeouts, 0u);
  EXPECT_GT(r.retries, 0u);
  // Health checks notice: the region is evicted during the blackout and
  // re-admitted (through the hysteresis) after it clears.
  EXPECT_GE(br.probes, static_cast<std::uint64_t>(
                           cfg.duration_s / cfg.failover.health_interval_s) -
                           2);
  EXPECT_GT(br.probe_failures, 0u);
  EXPECT_GE(br.evictions, 1u);
  EXPECT_GE(br.readmissions, 1u);
  // The survivors pick up the slack: both keep serving during the hole.
  EXPECT_GT(r.regions[0].completed, 0u);
  EXPECT_GT(r.regions[2].completed, 0u);
  // Conservation still holds under failure.
  EXPECT_EQ(r.requests, r.answered + r.failed + r.shed);
}

TEST(MultiRegion, GrayoutEvictsSlowRegionAndHysteresisConverges) {
  MultiRegionConfig cfg = small_config();
  cfg.duration_s = 10;
  // Flatten the diurnal swing so the pre/post hysteresis windows compare
  // like offered load, and pin the WAN up so the only fault in the run
  // is the fail-slow region.
  cfg.traffic.diurnal_amplitude = 0.1;
  cfg.wan.link.mtbf_hours = 1e6;
  // Region 1 goes fail-SLOW (not dark): 16x slower turns its ~0.14
  // utilization into sustained overload, so its queue grows and the
  // speed-aware probe sojourn estimate blows the 60 ms budget within a
  // probe interval or two.
  cfg.grayout_region = 1;
  cfg.grayout_start_s = 3;
  cfg.grayout_duration_s = 3;
  cfg.grayout_slow_factor = 16.0;
  cfg.failover.healthy_after = 2;
  const auto r = simulate_multiregion(cfg);
  const RegionStats& gr = r.regions[1];
  // Fail-slow loses NOTHING -- the station keeps accepting and answering
  // late.  That is exactly what makes it invisible to loss accounting.
  EXPECT_EQ(r.lost_requests, 0u);
  EXPECT_EQ(gr.lost, 0u);
  // But the health probe sees the inflated sojourn: the region is
  // evicted during the grayout and re-admitted after the speed recovers
  // and its queue drains.
  EXPECT_GT(gr.probe_failures, 0u);
  EXPECT_GE(gr.evictions, 1u);
  EXPECT_GE(gr.readmissions, 1u);
  // Clients stuck behind the slow region time out and retry elsewhere.
  EXPECT_GT(r.timeouts, 0u);
  // Conservation holds, and the hysteresis measured around the grayout
  // converges: lightly loaded and symmetric, goodput recovers.
  EXPECT_EQ(r.requests, r.answered + r.failed + r.shed);
  const auto glob = multiregion_hysteresis(r, cfg, /*surviving_only=*/false,
                                           /*settle_s=*/1.0);
  EXPECT_GT(glob.pre_qps, 0.0);
  EXPECT_GT(glob.post_qps, 0.0);
  EXPECT_GT(glob.recovery_ratio(), 0.7);
  // The surviving view excludes the grayed region on both sides.
  const auto surv = multiregion_hysteresis(r, cfg, /*surviving_only=*/true,
                                           /*settle_s=*/1.0);
  EXPECT_LT(surv.pre_qps, glob.pre_qps);
}

TEST(MultiRegion, AdmissionCapsShedExcessFast) {
  MultiRegionConfig cfg = small_config();
  // Overload: quadruple the offered load past total capacity and cap
  // each region below its share.
  cfg.traffic.session_rate_hz = 800;
  cfg.duration_s = 4;
  cfg.failover.admission_cap_frac = 0.5;
  cfg.failover.max_retries = 1;
  const auto r = simulate_multiregion(cfg);
  EXPECT_GT(r.shed, 0u);
  std::uint64_t capped = 0;
  for (const auto& rs : r.regions) capped += rs.capped;
  EXPECT_GT(capped, r.shed);  // spilled-then-shed counts several caps
  EXPECT_EQ(r.requests, r.answered + r.failed + r.shed);
  // Shedding at the balancer is cheap: what IS answered stays fast
  // compared to an uncapped meltdown.
  MultiRegionConfig naked = cfg;
  naked.failover.admission_cap_frac = 0;
  const auto rn = simulate_multiregion(naked);
  EXPECT_EQ(rn.shed, 0u);  // fail-open: nothing is refused at the edge
  EXPECT_GT(r.request_ms.quantile(0.5) * 4, 0.0);
  EXPECT_LT(r.request_ms.quantile(0.99), rn.request_ms.quantile(0.99) + 1);
}

TEST(MultiRegion, RetryBudgetAndBreakersEngageUnderBlackout) {
  MultiRegionConfig cfg = small_config();
  cfg.blackout_region = 0;
  cfg.blackout_start_s = 2;
  cfg.blackout_duration_s = 4;
  cfg.failover.budget_enabled = true;
  cfg.failover.budget_ratio = 0.02;
  cfg.failover.budget_burst = 5;
  cfg.failover.breaker.enabled = true;
  cfg.failover.breaker.window = 32;
  cfg.failover.breaker.failure_threshold = 0.5;
  cfg.failover.breaker.min_samples = 8;
  cfg.failover.breaker.open_ms = 200;
  const auto r = simulate_multiregion(cfg);
  // A blackout generates a burst of timeouts; a tight budget denies some
  // retries, and the dark region's breaker opens.
  EXPECT_GT(r.timeouts, 0u);
  EXPECT_GT(r.budget_denials, 0u);
  EXPECT_GT(r.breaker_open_transitions, 0u);
  EXPECT_EQ(r.requests, r.answered + r.failed + r.shed);
}

TEST(MultiRegion, StickySpilloverPinsHomeZone) {
  MultiRegionConfig cfg = small_config();
  cfg.route = RoutePolicy::kStickySpillover;
  // Make region 2 cheaper for zone 0 than its own intra path (0.5 ms vs
  // intra_ms = 1) so a latency router would pull zone 0 away; sticky
  // must keep it at home anyway.
  cfg.wan.latency_ms = {1, 80, 0.5,  //
                        80, 1, 80,   //
                        0.5, 80, 1};
  const auto r = simulate_multiregion(cfg);
  // Under sticky routing with all-healthy symmetric load, every region
  // serves ~1/3 of the queries (its own zone).
  const double total = static_cast<double>(r.answered);
  for (const auto& rs : r.regions) {
    EXPECT_NEAR(static_cast<double>(rs.completed) / total, 1.0 / 3.0, 0.06);
  }
}

// ------------------------------------------------- aggregation + ladder

TEST(MultiRegionResult, MergeChecksShapesAndWindows) {
  MultiRegionConfig cfg = small_config();
  cfg.duration_s = 2;
  const auto a = simulate_multiregion(cfg);
  // Window-size mismatch throws.
  MultiRegionConfig half = cfg;
  half.goodput_window_s = 0.25;
  const auto b = simulate_multiregion(half);
  MultiRegionResult m = a;
  EXPECT_THROW(m.merge(b), std::invalid_argument);
  // Region-shape mismatch throws.
  MultiRegionConfig bigger = cfg;
  bigger.regions.push_back(cfg.regions[0]);
  bigger.wan.regions = 4;
  const auto c = simulate_multiregion(bigger);
  m = a;
  EXPECT_THROW(m.merge(c), std::invalid_argument);
  // A default-constructed result has no region/class shape to merge into.
  MultiRegionResult empty;
  EXPECT_THROW(empty.merge(a), std::invalid_argument);
  // A windowless result (same shapes, goodput_window_s == 0) adopts the
  // other side's grid instead of throwing.
  MultiRegionConfig nowin = cfg;
  nowin.goodput_window_s = 0;
  MultiRegionResult adopted = simulate_multiregion(nowin);
  EXPECT_DOUBLE_EQ(adopted.goodput_window_s, 0.0);
  adopted.merge(a);
  EXPECT_DOUBLE_EQ(adopted.goodput_window_s, a.goodput_window_s);
  EXPECT_EQ(adopted.answered_per_window, a.answered_per_window);
  // Self-merge doubles the counters and trial count.
  m = a;
  m.merge(a);
  EXPECT_EQ(m.answered, 2 * a.answered);
  EXPECT_EQ(m.trials, 2u);
  EXPECT_DOUBLE_EQ(m.goodput_qps, a.goodput_qps);  // trial-weighted mean
  ASSERT_EQ(m.answered_per_window.size(), a.answered_per_window.size());
  for (std::size_t i = 0; i < m.answered_per_window.size(); ++i) {
    EXPECT_EQ(m.answered_per_window[i], 2 * a.answered_per_window[i]);
  }
}

TEST(MultiRegion, TrialsBitIdenticalAcrossPoolSizes) {
  // The satellite determinism contract: replaying the same seeded WAN
  // up/down traces and workload across pools of 1, 2, and 4 workers
  // yields the same bits.
  MultiRegionConfig cfg = small_config();
  cfg.duration_s = 4;
  cfg.wan.link_faults = true;
  cfg.wan.link = {.mtbf_hours = 4.0 / 3600.0, .mttr_hours = 0.5 / 3600.0};
  cfg.blackout_region = 2;
  cfg.blackout_start_s = 1.5;
  cfg.blackout_duration_s = 1.0;

  ThreadPool p1(1), p2(2), p4(4);
  const auto r1 = run_multiregion_trials(cfg, 5, &p1);
  const auto r2 = run_multiregion_trials(cfg, 5, &p2);
  const auto r4 = run_multiregion_trials(cfg, 5, &p4);

  EXPECT_GT(r1.link_failures, 0u);
  EXPECT_EQ(r1.trials, 5u);
  auto expect_same = [](const MultiRegionResult& a,
                        const MultiRegionResult& b) {
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.answered, b.answered);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.lost_requests, b.lost_requests);
    EXPECT_EQ(a.link_failures, b.link_failures);
    EXPECT_DOUBLE_EQ(a.goodput_qps, b.goodput_qps);
    EXPECT_DOUBLE_EQ(a.attempt_amplification, b.attempt_amplification);
    EXPECT_TRUE(a.request_ms == b.request_ms);
    EXPECT_TRUE(a.service_ms == b.service_ms);
    EXPECT_EQ(a.answered_per_window, b.answered_per_window);
    EXPECT_EQ(a.region_answered_per_window, b.region_answered_per_window);
    ASSERT_EQ(a.regions.size(), b.regions.size());
    for (std::size_t i = 0; i < a.regions.size(); ++i) {
      EXPECT_EQ(a.regions[i].routed, b.regions[i].routed);
      EXPECT_EQ(a.regions[i].completed, b.regions[i].completed);
      EXPECT_EQ(a.regions[i].lost, b.regions[i].lost);
      EXPECT_EQ(a.regions[i].evictions, b.regions[i].evictions);
      EXPECT_DOUBLE_EQ(a.regions[i].utilization, b.regions[i].utilization);
    }
    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (std::size_t i = 0; i < a.classes.size(); ++i) {
      EXPECT_EQ(a.classes[i].answered, b.classes[i].answered);
      EXPECT_EQ(a.classes[i].slo_met, b.classes[i].slo_met);
    }
  };
  expect_same(r1, r2);
  expect_same(r1, r4);
}

TEST(MultiRegion, LadderRungsAreOrderedByProtection) {
  MultiRegionConfig base = small_config();
  base.blackout_region = 1;
  base.blackout_start_s = 3;
  base.blackout_duration_s = 2;
  base.failover.admission_cap_frac = 0.85;
  const auto ladder = failover_scenarios(base, 1);
  ASSERT_EQ(ladder.size(), 4u);
  // Rung 1 strips every protection; rung 3 keeps them all.
  EXPECT_DOUBLE_EQ(ladder[0].config.failover.admission_cap_frac, 0.0);
  EXPECT_FALSE(ladder[0].config.failover.budget_enabled);
  EXPECT_GT(ladder[1].config.failover.admission_cap_frac, 0.0);
  EXPECT_EQ(ladder[2].config.failover.admission_cap_frac, 0.85);
  EXPECT_GT(ladder[2].config.failover.healthy_after, 0u);
  // Rung 4 swaps the blackout for a fail-slow grayout of the same region
  // over the same window, full stack intact.
  const auto& gray = ladder[3].config;
  EXPECT_FALSE(gray.blackout_enabled());
  ASSERT_TRUE(gray.grayout_enabled());
  EXPECT_EQ(gray.grayout_region, base.blackout_region);
  EXPECT_DOUBLE_EQ(gray.grayout_start_s, base.blackout_start_s);
  EXPECT_DOUBLE_EQ(gray.grayout_duration_s, base.blackout_duration_s);
  EXPECT_EQ(gray.failover.admission_cap_frac, 0.85);
  for (const auto& s : ladder) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_EQ(s.result.requests,
              s.result.answered + s.result.failed + s.result.shed);
  }
  // The unprotected rung generates at least as much WAN traffic per
  // request as the protected ones (retry amplification is what the
  // ladder exists to kill).
  EXPECT_GE(ladder[0].result.attempt_amplification,
            ladder[2].result.attempt_amplification - 1e-9);
}

TEST(MultiRegion, HysteresisMeasuresAroundBlackout) {
  MultiRegionConfig cfg = small_config();
  cfg.duration_s = 10;
  // Flatten the diurnal curve so pre- and post-blackout windows see the
  // same offered load and the recovery ratio is about the system, not
  // the phase of the day the windows happen to land on.
  cfg.traffic.diurnal_amplitude = 0.1;
  cfg.blackout_region = 1;
  cfg.blackout_start_s = 4;
  cfg.blackout_duration_s = 2;
  const auto r = run_multiregion_trials(cfg, 2);
  const auto glob = multiregion_hysteresis(r, cfg, /*surviving_only=*/false,
                                           /*settle_s=*/1.0);
  // Lightly loaded and symmetric: goodput recovers essentially fully,
  // and both sides of the window are live.
  EXPECT_GT(glob.pre_qps, 0.0);
  EXPECT_GT(glob.post_qps, 0.0);
  EXPECT_GT(glob.recovery_ratio(), 0.7);
  // The surviving-region view excludes the blacked-out region on both
  // sides, so pre-blackout it sees ~2/3 of the global rate.
  const auto surv = multiregion_hysteresis(r, cfg, /*surviving_only=*/true,
                                           /*settle_s=*/1.0);
  EXPECT_GT(surv.pre_qps, 0.0);
  EXPECT_LT(surv.pre_qps, glob.pre_qps);
  EXPECT_NEAR(surv.pre_qps / glob.pre_qps, 2.0 / 3.0, 0.08);
  // No blackout (or no windows) -> zeros, by contract.
  MultiRegionConfig quiet = cfg;
  quiet.blackout_region = MultiRegionConfig::kNoBlackout;
  const auto none = multiregion_hysteresis(r, quiet, false, 1.0);
  EXPECT_DOUBLE_EQ(none.pre_qps, 0.0);
  EXPECT_DOUBLE_EQ(none.recovery_ratio(), 0.0);
}

}  // namespace
}  // namespace arch21::cloud
