// Tests for the technology module: node-table invariants, Dennard vs
// post-Dennard scaling algebra, DVFS physics (energy valley), NTV
// reliability coupling, dark-silicon projection, and the CPU-DB
// decomposition (the paper's ~80x architecture claim).

#include <gtest/gtest.h>

#include <cmath>

#include "tech/cpudb.hpp"
#include "tech/dark_silicon.hpp"
#include "tech/dvfs.hpp"
#include "tech/node.hpp"
#include "tech/ntv.hpp"

namespace arch21::tech {
namespace {

TEST(NodeTable, OrderedAndMonotone) {
  const auto nodes = node_table();
  ASSERT_GE(nodes.size(), 8u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].feature_nm, nodes[i - 1].feature_nm);
    EXPECT_GE(nodes[i].year, nodes[i - 1].year);
    EXPECT_GT(nodes[i].density_mtx_mm2, nodes[i - 1].density_mtx_mm2);
    EXPECT_LE(nodes[i].vdd, nodes[i - 1].vdd);
    EXPECT_LT(nodes[i].cgate_rel, nodes[i - 1].cgate_rel);
  }
}

TEST(NodeTable, MooresLawHolds) {
  // Transistor count on fixed area roughly doubles every ~2 years across
  // the table (Table 1 row 1: "still 2x every 18-24 months").
  const auto nodes = node_table();
  const auto& first = nodes.front();
  const auto& last = nodes.back();
  const double years = last.year - first.year;
  const double gens = years / 2.0;
  const double growth = last.density_mtx_mm2 / first.density_mtx_mm2;
  const double doubling_per_2yr = std::pow(growth, 1.0 / gens);
  EXPECT_GT(doubling_per_2yr, 1.6);
  EXPECT_LT(doubling_per_2yr, 2.6);
}

TEST(NodeTable, FrequencySaturatesPostDennard) {
  // Frequency grew ~5x from 180nm to 90nm but < 2x from 65nm to 5nm.
  const auto n180 = *find_node("180nm");
  const auto n90 = *find_node("90nm");
  const auto n65 = *find_node("65nm");
  const auto n5 = *find_node("5nm");
  EXPECT_GT(n90.freq_ghz / n180.freq_ghz, 3.0);
  EXPECT_LT(n5.freq_ghz / n65.freq_ghz, 2.0);
}

TEST(NodeTable, Lookup) {
  EXPECT_TRUE(find_node("45nm").has_value());
  EXPECT_FALSE(find_node("3nm").has_value());
  EXPECT_EQ(node_for_year(2008).name, "45nm");
  EXPECT_EQ(node_for_year(1900).name, "180nm");
  EXPECT_EQ(node_for_year(2100).name, "5nm");
}

TEST(Scaling, DennardKeepsPowerConstant) {
  const auto g = dennard_generation(1.4);
  EXPECT_NEAR(g.power_fixed_area, 1.0, 1e-12);
  EXPECT_NEAR(g.density, 1.96, 1e-12);
  EXPECT_NEAR(g.frequency, 1.4, 1e-12);
  // Switching energy per op drops by s^3.
  EXPECT_NEAR(g.switch_energy(), 1.0 / (1.4 * 1.4 * 1.4), 1e-12);
}

TEST(Scaling, PostDennardPowerGrows) {
  const auto g = post_dennard_generation(1.4, 0.97, 1.05);
  EXPECT_GT(g.power_fixed_area, 1.2);
  // Table 1 row 2: power would roughly double with 2x transistors if
  // nothing is done -- check the compounding over two generations.
  const auto two = compound(g, 2);
  EXPECT_GT(two.power_fixed_area, 1.6);
  EXPECT_NEAR(two.density, g.density * g.density, 1e-9);
}

TEST(Scaling, CompoundZeroIsIdentity) {
  const auto g = compound(dennard_generation(), 0);
  EXPECT_EQ(g.density, 1.0);
  EXPECT_EQ(g.frequency, 1.0);
}

TEST(Dvfs, NominalFrequencyCalibrated) {
  DvfsModel::Params p;
  p.vnom = 1.0;
  p.vth = 0.3;
  p.fnom_ghz = 3.0;
  const DvfsModel m(p);
  EXPECT_NEAR(m.frequency(1.0), 3.0e9, 1.0);
}

TEST(Dvfs, FrequencyMonotoneAndZeroBelowVth) {
  const DvfsModel m = DvfsModel::for_node(*find_node("22nm"));
  EXPECT_EQ(m.frequency(0.2), 0.0);
  double prev = 0;
  for (double v = 0.35; v <= 0.9; v += 0.05) {
    const double f = m.frequency(v);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(Dvfs, DynamicEnergyQuadraticInV) {
  DvfsModel::Params p;
  const DvfsModel m(p);
  EXPECT_NEAR(m.dynamic_energy(1.0) / m.dynamic_energy(0.5), 4.0, 1e-9);
}

TEST(Dvfs, EnergyValleyExists) {
  // The minimum-energy voltage sits strictly between the floor and vnom:
  // the defining NTV result.
  const DvfsModel m = DvfsModel::for_node(*find_node("22nm"));
  const double vmin = m.min_energy_voltage();
  EXPECT_GT(vmin, m.params().vth);
  EXPECT_LT(vmin, m.params().vnom);
  // Energy at the valley beats both endpoints.
  EXPECT_LT(m.energy_per_op(vmin), m.energy_per_op(m.params().vnom));
  EXPECT_LT(m.energy_per_op(vmin), m.energy_per_op(m.params().vth + 0.06));
}

TEST(Dvfs, ValleySavesSeveralX) {
  // NTV's promised "tremendous potential": several-fold energy reduction
  // vs nominal operation.
  const DvfsModel m = DvfsModel::for_node(*find_node("32nm"));
  const double gain =
      m.energy_per_op(m.params().vnom) / m.energy_per_op(m.min_energy_voltage());
  EXPECT_GT(gain, 2.0);
  EXPECT_LT(gain, 50.0);
}

TEST(Dvfs, VoltageForPowerRespectsBudget) {
  const DvfsModel m = DvfsModel::for_node(*find_node("22nm"));
  const double full = m.power(m.params().vnom);
  const double v = m.voltage_for_power(full / 4.0);
  EXPECT_LT(v, m.params().vnom);
  EXPECT_LE(m.power(v), full / 4.0 * 1.01);
  // A generous budget returns vnom.
  EXPECT_DOUBLE_EQ(m.voltage_for_power(full * 2), m.params().vnom);
}

TEST(Dvfs, SweepShapes) {
  const DvfsModel m = DvfsModel::for_node(*find_node("22nm"));
  const auto pts = m.sweep(20);
  ASSERT_EQ(pts.size(), 20u);
  EXPECT_LT(pts.front().v, pts.back().v);
  EXPECT_LT(pts.front().f_hz, pts.back().f_hz);
  EXPECT_LT(pts.front().power_w, pts.back().power_w);
}

TEST(Dvfs, BadParamsThrow) {
  DvfsModel::Params p;
  p.vnom = 0.2;
  p.vth = 0.3;
  EXPECT_THROW(DvfsModel{p}, std::invalid_argument);
}

TEST(Ntv, FaultProbabilityMonotoneDecreasingInV) {
  NtvReliability rel({.vth = 0.3, .v50_margin = 0.08, .steep = 0.02,
                      .floor = 1e-12});
  double prev = 1.0;
  for (double v = 0.32; v <= 1.0; v += 0.02) {
    const double p = rel.fault_probability(v);
    EXPECT_LE(p, prev);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
  // Near nominal, faults are negligible; at threshold, near certain.
  EXPECT_LT(rel.fault_probability(1.0), 1e-6);
  EXPECT_GT(rel.fault_probability(0.31), 0.9);
}

TEST(Ntv, ResilienceShiftsOptimumUp) {
  // With replay costs, the effective-energy optimum sits at or above the
  // raw minimum-energy voltage: reliability taxes the deepest NTV points.
  const DvfsModel m = DvfsModel::for_node(*find_node("22nm"));
  NtvReliability rel({.vth = m.params().vth, .v50_margin = 0.1,
                      .steep = 0.03, .floor = 1e-12});
  const double raw_vmin = m.min_energy_voltage();
  const auto opt = ntv_optimum(m, rel, /*replay_ops=*/50.0);
  EXPECT_GE(opt.v, raw_vmin - 0.02);
  // The optimum is still below nominal -- NTV still pays off.
  EXPECT_LT(opt.v, m.params().vnom);
  EXPECT_LT(opt.e_effective_j, m.energy_per_op(m.params().vnom));
}

TEST(Ntv, SweepConsistent) {
  const DvfsModel m = DvfsModel::for_node(*find_node("32nm"));
  NtvReliability rel({.vth = m.params().vth, .v50_margin = 0.08,
                      .steep = 0.02, .floor = 1e-12});
  const auto pts = ntv_sweep(m, rel, 10.0, 30);
  ASSERT_EQ(pts.size(), 30u);
  for (const auto& pt : pts) {
    EXPECT_GE(pt.e_effective_j, pt.e_op_j);  // replay can only add energy
  }
}

TEST(DarkSilicon, ReferenceNodeFullyLit) {
  DarkSiliconModel m({.die_mm2 = 100, .power_budget_w = 100,
                      .reference_node = "90nm", .activity = 0.1});
  EXPECT_NEAR(m.utilization(*find_node("90nm")), 1.0, 1e-9);
}

TEST(DarkSilicon, UtilizationFallsAfterReference) {
  DarkSiliconModel m({.die_mm2 = 100, .power_budget_w = 100,
                      .reference_node = "90nm", .activity = 0.1});
  const auto rows = m.project();
  // Find the reference row, then check monotone decline afterwards.
  double prev = 2.0;
  bool past_ref = false;
  for (const auto& r : rows) {
    if (r.node->name == "90nm") past_ref = true;
    if (past_ref) {
      EXPECT_LE(r.utilization, prev + 1e-12);
      prev = r.utilization;
    }
    EXPECT_NEAR(r.utilization + r.dark_fraction, 1.0, 1e-12);
  }
  // By the deep-submicron end, most of the chip is dark.
  EXPECT_LT(rows.back().utilization, 0.5);
}

TEST(DarkSilicon, UnknownReferenceThrows) {
  EXPECT_THROW(DarkSiliconModel({.die_mm2 = 100, .power_budget_w = 100,
                                 .reference_node = "1nm", .activity = 0.1}),
               std::invalid_argument);
}

TEST(CpuDb, SeriesShape) {
  const auto db = cpu_db();
  ASSERT_GE(db.size(), 10u);
  EXPECT_EQ(db.front().year, 1985);
  EXPECT_EQ(db.back().year, 2012);
  for (std::size_t i = 1; i < db.size(); ++i) {
    EXPECT_GT(db[i].performance(), db[i - 1].performance());
    EXPECT_LT(db[i].fo4_ps, db[i - 1].fo4_ps);
  }
}

TEST(CpuDb, ArchitectureGainNear80x) {
  // The paper: "architecture credited with ~80x improvement since 1985".
  const auto d = decomposition_2012();
  EXPECT_GT(d.arch_gain, 55.0);
  EXPECT_LT(d.arch_gain, 110.0);
  // And total single-thread growth is in the thousands.
  EXPECT_GT(d.total_gain, 1000.0);
  EXPECT_NEAR(d.total_gain, d.tech_gain * d.arch_gain, 1e-6);
}

TEST(CpuDb, DecompositionMonotoneGrowth) {
  const auto rows = decompose_performance();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].total_gain, rows[i - 1].total_gain);
    EXPECT_GE(rows[i].tech_gain, rows[i - 1].tech_gain);
  }
  EXPECT_DOUBLE_EQ(rows.front().total_gain, 1.0);
  EXPECT_DOUBLE_EQ(rows.front().arch_gain, 1.0);
}

}  // namespace
}  // namespace arch21::tech
